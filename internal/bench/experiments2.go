package bench

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/sim"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

// RunE5 measures session outcomes under the §2.1 policy alternatives:
// offline nightly batches, 2VNL/3VNL/4VNL fixed schedules, and the
// commit-when-quiet policy (never expires, but the writer can starve).
func RunE5(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	horizon := sim.Minute(7 * 1440)
	sched := sim.Schedule{Offset: 540, Period: 1440, Duration: 1380} // Figure 2 policy
	// Analyst sessions: arrivals all day, lengths from 15 min to 10 h.
	var sessions []sim.Session
	count := 300
	if cfg.Quick {
		count = 80
	}
	for i := 0; i < count; i++ {
		sessions = append(sessions, sim.Session{
			Arrive: sim.Minute(rng.Int63n(int64(horizon - 600))),
			Length: sim.Minute(15 + rng.Int63n(585)),
		})
	}
	t := &Table{ID: "E5", Title: fmt.Sprintf("Session outcomes over %d sessions, 7 days, daily 23h maintenance", count),
		Columns: []string{"policy", "completed", "expired", "blocked", "interrupted", "availability"}}
	type policyRun struct {
		name string
		p    sim.Policy
		n    int
		s    sim.Schedule
	}
	night := sim.Schedule{Offset: 0, Period: 1440, Duration: 480}
	runs := []policyRun{
		{"offline nightly (8h window)", sim.PolicyOffline, 0, night},
		{"2VNL daily", sim.PolicyVNL, 2, sched},
		{"3VNL daily", sim.PolicyVNL, 3, sched},
		{"4VNL daily", sim.PolicyVNL, 4, sched},
	}
	for _, r := range runs {
		res, err := sim.Simulate(r.p, r.n, r.s, horizon, sessions)
		if err != nil {
			return nil, err
		}
		t.AddRow(r.name, res.Outcomes[sim.Completed], res.Outcomes[sim.Expired],
			res.Outcomes[sim.Blocked], res.Outcomes[sim.Interrupted],
			fmt.Sprintf("%.1f%%", 100*res.Availability))
	}
	// Commit-when-quiet: no session ever expires; compute the commit delay
	// the writer suffers per day (time from scheduled commit until the
	// last session that was open at that moment ends).
	var worst, total sim.Minute
	days := 0
	for c := sched.Offset + sched.Duration; c < horizon; c += sched.Period {
		var wait sim.Minute
		for _, s := range sessions {
			if s.Arrive < c && s.Arrive+s.Length > c {
				if w := s.Arrive + s.Length - c; w > wait {
					wait = w
				}
			}
		}
		if wait > worst {
			worst = wait
		}
		total += wait
		days++
	}
	t.AddRow("2VNL commit-when-quiet", count, 0, 0, 0, "100.0%")
	t.Notes = append(t.Notes,
		fmt.Sprintf("commit-when-quiet writer delay: mean %.0f min/day, worst %d min (starvation risk, §2.1)",
			float64(total)/float64(days), worst),
		"expected shape: higher n -> fewer expirations; offline completes fewer and blocks night arrivals")
	return []*Table{t}, nil
}

// RunE6 measures the query-rewrite overhead of §4: the same aggregate query
// over (a) a plain unversioned table, (b) the 2VNL-extended table via the
// rewritten query, and (c) the same while a maintenance transaction has
// touched every tuple (CASE takes the pre-update branch).
func RunE6(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	rows := cfg.Rows
	gen := workload.New(cfg.Seed)
	// Plain table.
	plainDB := db.Open(db.Options{})
	if _, err := plainDB.Exec(`CREATE TABLE DailySales (
		city VARCHAR(20), state VARCHAR(2), product_line VARCHAR(12), date DATE,
		total_sales INT(4) UPDATABLE, UNIQUE KEY(city, state, product_line, date))`, nil); err != nil {
		return nil, err
	}
	// Versioned warehouse with the same logical content.
	vdb := db.Open(db.Options{})
	store, err := core.Open(vdb, core.Options{})
	if err != nil {
		return nil, err
	}
	wh := warehouse.New(store)
	if _, err := wh.Materialize(warehouse.ViewDef{
		Name:       "DailySales",
		GroupBy:    []string{"city", "state", "product_line", "date"},
		Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "amount", As: "total_sales"}},
	}); err != nil {
		return nil, err
	}
	batch := gen.Batch(rows, 0)
	if err := wh.RefreshBatch(batch); err != nil {
		return nil, err
	}
	// Mirror the summary contents into the plain table.
	sess := store.BeginSession()
	roll, err := sess.Query(`SELECT city, state, product_line, date, total_sales FROM DailySales`, nil)
	if err != nil {
		return nil, err
	}
	plainTbl, err := plainDB.TableOf("DailySales")
	if err != nil {
		return nil, err
	}
	for _, tu := range roll.Tuples {
		if _, err := plainTbl.Insert(tu); err != nil {
			return nil, err
		}
	}
	sess.Close()

	const q = `SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state`
	iters := 30
	if cfg.Quick {
		iters = 8
	}
	timePlain := func() time.Duration {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := plainDB.Query(q, nil); err != nil {
				panic(err)
			}
		}
		return time.Since(start) / time.Duration(iters)
	}
	timeVNL := func() time.Duration {
		s := store.BeginSession()
		defer s.Close()
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := s.Query(q, nil); err != nil {
				panic(err)
			}
		}
		return time.Since(start) / time.Duration(iters)
	}
	plainLat := timePlain()
	cleanLat := timeVNL()
	// Touch every group with an open maintenance transaction, then measure
	// the pre-update read path.
	m, err := store.BeginMaintenance()
	if err != nil {
		return nil, err
	}
	if _, err := m.Exec(`UPDATE DailySales SET total_sales = total_sales + 1`, nil); err != nil {
		return nil, err
	}
	dirtyLat := timeVNL()
	if err := m.Commit(); err != nil {
		return nil, err
	}
	t := &Table{ID: "E6", Title: fmt.Sprintf("Rewrite overhead: roll-up over %d summary tuples (mean of %d runs)",
		plainTbl.Len(), iters),
		Columns: []string{"configuration", "latency", "vs plain"}}
	rat := func(d time.Duration) string { return fmt.Sprintf("%.2fx", float64(d)/float64(plainLat)) }
	t.AddRow("plain table, plain query", plainLat.Round(time.Microsecond).String(), "1.00x")
	t.AddRow("2VNL table, rewritten query", cleanLat.Round(time.Microsecond).String(), rat(cleanLat))
	t.AddRow("2VNL, every tuple touched by open maintenance", dirtyLat.Round(time.Microsecond).String(), rat(dirtyLat))
	t.Notes = append(t.Notes,
		"the rewrite costs one CASE per updatable attribute reference plus the visibility predicate;",
		"the paper's claim is that this overhead is small relative to lock-based alternatives' blocking")
	return []*Table{t}, nil
}

// RunE7 measures maintenance-window capacity (§1.1's second problem): how
// much source data can be propagated per day when maintenance is confined
// to an 8-hour night, versus 2VNL's 23-hour concurrent window — and how
// many materialized views a fixed daily feed supports under each.
func RunE7(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	gen := workload.New(cfg.Seed)
	// Measure the per-fact maintenance cost with an increasing number of
	// materialized views.
	t := &Table{ID: "E7", Title: "Maintenance throughput and daily window capacity",
		Columns: []string{"views", "facts/sec", "8h nightly capacity", "23h 2VNL capacity"}}
	defs := []warehouse.ViewDef{
		{Name: "DailySales", GroupBy: []string{"city", "state", "product_line", "date"},
			Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "amount", As: "total_sales"}}},
		{Name: "StateSales", GroupBy: []string{"state"},
			Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "amount", As: "total_sales"}, {Func: "count", As: "n"}}},
		{Name: "LineSales", GroupBy: []string{"product_line", "date"},
			Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "amount", As: "total"}}},
		{Name: "StoreSales", GroupBy: []string{"store", "date"},
			Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "amount", As: "total"}}},
		{Name: "CityQty", GroupBy: []string{"city", "product_line"},
			Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "quantity", As: "qty"}}},
		{Name: "ProductSales", GroupBy: []string{"product", "date"},
			Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "amount", As: "total"}}},
	}
	batchSize := 4000
	if cfg.Quick {
		batchSize = 800
	}
	for nViews := 1; nViews <= len(defs); nViews++ {
		gen = workload.New(cfg.Seed) // fresh feed per configuration
		d := db.Open(db.Options{})
		store, err := core.Open(d, core.Options{})
		if err != nil {
			return nil, err
		}
		wh := warehouse.New(store)
		for _, def := range defs[:nViews] {
			if _, err := wh.Materialize(def); err != nil {
				return nil, err
			}
		}
		// Average over several batches to smooth timing noise.
		const reps = 3
		totalFacts := 0
		var elapsed time.Duration
		for r := 0; r < reps; r++ {
			batch := gen.Batch(batchSize, 5)
			start := time.Now()
			if err := wh.RefreshBatch(batch); err != nil {
				return nil, err
			}
			elapsed += time.Since(start)
			totalFacts += batch.Size()
			gen.NextDay()
		}
		rate := float64(totalFacts) / elapsed.Seconds()
		t.AddRow(nViews, fmt.Sprintf("%.0f", rate),
			fmt.Sprintf("%.1fM facts", rate*8*3600/1e6),
			fmt.Sprintf("%.1fM facts", rate*23*3600/1e6))
	}
	t.Notes = append(t.Notes,
		"paper §1.1: with nightly maintenance the window bounds the number and size of materialized views;",
		"2VNL lifts the bound to the full day (23h/8h = 2.9x capacity at equal hardware) with readers online")
	return []*Table{t}, nil
}

// RunE8 exercises the §7 future-work features implemented here: garbage
// collection of logically-deleted tuples and rollback without before-image
// logging, compared against the undo-log mode.
func RunE8(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	// GC part: churn groups so deletes accumulate.
	d := db.Open(db.Options{})
	store, err := core.Open(d, core.Options{})
	if err != nil {
		return nil, err
	}
	schema := catalog.MustSchema("kv", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	}, "k")
	if _, err := store.CreateTable(schema); err != nil {
		return nil, err
	}
	rows := cfg.Rows / 2
	m, err := store.BeginMaintenance()
	if err != nil {
		return nil, err
	}
	for k := 0; k < rows; k++ {
		if err := m.Insert("kv", catalog.Tuple{catalog.NewInt(int64(k)), catalog.NewInt(1)}); err != nil {
			return nil, err
		}
	}
	if err := m.Commit(); err != nil {
		return nil, err
	}
	// Delete half.
	m, _ = store.BeginMaintenance()
	for k := 0; k < rows/2; k++ {
		if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(int64(k))}); err != nil {
			return nil, err
		}
	}
	if err := m.Commit(); err != nil {
		return nil, err
	}
	gcT := &Table{ID: "E8a", Title: fmt.Sprintf("Garbage collection over %d tuples (half logically deleted)", rows),
		Columns: []string{"metric", "value"}}
	dead := store.DeadTuples()["kv"]
	holdout := store.BeginSession() // pins nothing: VN is current; GC may proceed
	start := time.Now()
	st := store.GC()
	gcDur := time.Since(start)
	holdout.Close()
	gcT.AddRow("dead tuples before", dead)
	gcT.AddRow("reclaimed", st.Removed)
	gcT.AddRow("bytes reclaimed", st.BytesReclaimed)
	gcT.AddRow("scan+reclaim time", gcDur.Round(time.Microsecond).String())
	gcT.AddRow("tuples/sec", fmt.Sprintf("%.0f", float64(st.Scanned)/gcDur.Seconds()))

	// Rollback part: identical batches aborted under each mode.
	rbT := &Table{ID: "E8b", Title: fmt.Sprintf("Rollback of a %d-update batch", rows/2),
		Columns: []string{"mode", "abort time", "sessions expired", "state restored"}}
	for _, mode := range []core.RollbackMode{core.RollbackUndoLog, core.RollbackLogless} {
		d2 := db.Open(db.Options{})
		s2, err := core.Open(d2, core.Options{})
		if err != nil {
			return nil, err
		}
		if _, err := s2.CreateTable(schema); err != nil {
			return nil, err
		}
		m, _ := s2.BeginMaintenance()
		for k := 0; k < rows; k++ {
			if err := m.Insert("kv", catalog.Tuple{catalog.NewInt(int64(k)), catalog.NewInt(7)}); err != nil {
				return nil, err
			}
		}
		m.Commit()
		oldSess := s2.BeginSession()
		mb, err := s2.BeginMaintenanceMode(mode, true)
		if err != nil {
			return nil, err
		}
		for k := 0; k < rows/2; k++ {
			if _, err := mb.UpdateKey("kv", catalog.Tuple{catalog.NewInt(int64(k))},
				func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewInt(9); return c }); err != nil {
				return nil, err
			}
		}
		start := time.Now()
		if err := mb.Rollback(); err != nil {
			return nil, err
		}
		abortDur := time.Since(start)
		// Verify restoration via a fresh session.
		fresh := s2.BeginSession()
		var sum int64
		if err := fresh.Scan("kv", func(t catalog.Tuple) bool { sum += t[1].Int(); return true }); err != nil {
			return nil, err
		}
		fresh.Close()
		restored := "yes"
		if sum != int64(rows)*7 {
			restored = fmt.Sprintf("NO (sum %d)", sum)
		}
		expired := 0
		if oldSess.Expired() {
			expired = 1
		}
		oldSess.Close()
		name := "undo-log"
		if mode == core.RollbackLogless {
			name = "logless (§7)"
		}
		rbT.AddRow(name, abortDur.Round(time.Microsecond).String(), expired, restored)
	}
	rbT.Notes = append(rbT.Notes,
		"logless rollback reverts from in-tuple pre-update versions (no before-image log) at the cost of",
		"expiring sessions older than currentVN; the undo-log mode restores exactly and expires nobody.",
		"(The open session here is AT currentVN, so neither mode expires it.)")
	return []*Table{gcT, rbT}, nil
}
