package bench

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/mvcc"
	"repro/internal/obs"
	"repro/internal/sim"
)

// RunE1 measures storage overhead. Part (a) is analytic: the 2VNL/nVNL
// schema extension as a function of the updatable-attribute fraction,
// reproducing §3.1's claim that summary tables (few updatable attributes)
// pay little while worst-case all-updatable schemas approach (n−1)×.
// Part (b) is measured: bytes held by each scheme after identical update
// batches — 2VNL is flat (versions live inside tuples) while the MV2PL
// version pool grows until GC.
func RunE1(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	a := &Table{ID: "E1a", Title: "Schema overhead vs updatable fraction (key + 8 columns x 8 bytes)",
		Columns: []string{"updatable", "base B", "2VNL B", "2VNL +%", "3VNL +%", "4VNL +%"}}
	for upd := 1; upd <= 8; upd++ {
		cols := []catalog.Column{{Name: "k", Type: catalog.TypeInt, Length: 8}}
		for i := 0; i < 8; i++ {
			cols = append(cols, catalog.Column{
				Name: fmt.Sprintf("c%d", i), Type: catalog.TypeInt, Length: 8,
				Updatable: i >= 8-upd,
			})
		}
		schema := catalog.MustSchema("t", cols, "k")
		row := []any{fmt.Sprintf("%d/8", upd), schema.RowBytes()}
		var ext2 int
		for _, n := range []int{2, 3, 4} {
			e, err := core.ExtendSchema(schema, n)
			if err != nil {
				return nil, err
			}
			_, extB, ratio := e.Overhead()
			if n == 2 {
				ext2 = extB
				row = append(row, extB)
			}
			row = append(row, fmt.Sprintf("%.0f%%", 100*ratio))
		}
		_ = ext2
		a.AddRow(row...)
	}
	a.Notes = append(a.Notes,
		"paper §3.1: worst case ~doubles storage; summary tables with one aggregate pay ~20% (Figure 3)")

	b := &Table{ID: "E1b", Title: fmt.Sprintf("Measured storage after %d update batches over %d tuples",
		cfg.Batches, cfg.Rows),
		Columns: []string{"scheme", "table B", "pool B", "total B", "live B", "live after GC"}}
	mkSchemes := []func() (mvcc.Scheme, error){
		func() (mvcc.Scheme, error) { return mvcc.NewVNL(mvcc.Config{}, 2) },
		func() (mvcc.Scheme, error) { return mvcc.NewVNL(mvcc.Config{}, 3) },
		func() (mvcc.Scheme, error) { return mvcc.NewMV2PL(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewMV2PL(mvcc.Config{CacheSlots: 2}) },
		func() (mvcc.Scheme, error) { return mvcc.NewS2PL(mvcc.Config{}) },
	}
	for _, mk := range mkSchemes {
		s, err := mk()
		if err != nil {
			return nil, err
		}
		if err := loadScheme(s, cfg.Rows); err != nil {
			return nil, err
		}
		for b := 0; b < cfg.Batches; b++ {
			w, err := s.BeginWriter()
			if err != nil {
				return nil, err
			}
			for k := 0; k < cfg.Rows/10; k++ {
				if err := w.Update(int64(k), int64(b*1000+k)); err != nil {
					return nil, err
				}
			}
			if err := w.Commit(); err != nil {
				return nil, err
			}
		}
		st := s.Stats()
		s.GC()
		after := s.Stats()
		b.AddRow(s.Name(), st.StorageBytes-st.PoolBytes, st.PoolBytes, st.StorageBytes,
			st.LiveBytes, after.LiveBytes)
	}
	b.Notes = append(b.Notes,
		"2VNL storage is constant across batches; the MV2PL pool grows by one record per first-touch update per batch")
	return []*Table{a, b}, nil
}

func loadScheme(s mvcc.Scheme, rows int) error {
	kv := make([]mvcc.KV, rows)
	for i := range kv {
		kv[i] = mvcc.KV{K: int64(i), V: 100}
	}
	return s.Load(kv)
}

// RunE2 measures blocking: concurrent readers issue full scans while the
// maintenance transaction applies a batch and then deliberately stays open
// (long maintenance transactions are the warehouse norm, §1). Reported per
// scheme: reader latency (mean / max), readers served, failed reader
// attempts, and the writer's commit delay.
func RunE2(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	hold := 200 * time.Millisecond
	if cfg.Quick {
		hold = 50 * time.Millisecond
	}
	t := &Table{ID: "E2", Title: fmt.Sprintf("Blocking under a %v maintenance transaction (%d tuples, %d readers)",
		hold, cfg.Rows, cfg.Readers),
		Columns: []string{"scheme", "reads ok", "blocked/failed", "mean lat", "max lat", "commit delay"}}
	mk := []func() (mvcc.Scheme, error){
		func() (mvcc.Scheme, error) { return mvcc.NewOffline(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewS2PL(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewTwoV2PL(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewMV2PL(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewVNL(mvcc.Config{}, 2) },
	}
	for _, f := range mk {
		s, err := f()
		if err != nil {
			return nil, err
		}
		if err := loadScheme(s, cfg.Rows); err != nil {
			return nil, err
		}
		res, err := blockingRun(s, cfg, hold)
		if err != nil {
			return nil, err
		}
		t.AddRow(s.Name(), res.ok, res.failed,
			res.meanLat.Round(time.Microsecond).String(),
			res.maxLat.Round(time.Microsecond).String(),
			res.commitDelay.Round(time.Microsecond).String())
	}
	t.Notes = append(t.Notes,
		"expected shape (§1, §6): Offline/S2PL readers blocked for the whole transaction;",
		"2V2PL readers run but the writer's commit waits for them; MV2PL and 2VNL block nobody")
	return []*Table{t}, nil
}

type blockingResult struct {
	ok, failed  int
	meanLat     time.Duration
	maxLat      time.Duration
	commitDelay time.Duration
}

func blockingRun(s mvcc.Scheme, cfg Config, hold time.Duration) (*blockingResult, error) {
	w, err := s.BeginWriter()
	if err != nil {
		return nil, err
	}
	for k := 0; k < cfg.Rows/20; k++ {
		if err := w.Update(int64(k), int64(k)); err != nil {
			return nil, err
		}
	}
	// The transaction now stays open for `hold`, with readers hammering.
	// The readers meter themselves through a private obs registry —
	// lock-free counters and a latency histogram instead of a
	// mutex-protected tally, so the measurement does not serialize the
	// very concurrency being measured.
	reg := obs.NewRegistry()
	okC := reg.Counter("bench_reads_ok_total", "reader transactions completed")
	failC := reg.Counter("bench_reads_failed_total", "reader transactions refused or erroring")
	lat := reg.Histogram("bench_read_latency_ns", "reader begin-to-close latency", obs.DurationBuckets)
	maxLat := reg.Gauge("bench_read_latency_max_ns", "worst reader latency")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < cfg.Readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				rd, err := s.BeginReader()
				if err != nil {
					failC.Inc()
					time.Sleep(time.Millisecond)
					continue
				}
				_, _, err = rd.ScanSum()
				rd.Close()
				l := time.Since(start).Nanoseconds()
				if err != nil {
					failC.Inc()
				} else {
					okC.Inc()
					lat.Observe(l)
					maxLat.SetMax(l)
				}
			}
		}()
	}
	time.Sleep(hold)
	commitStart := time.Now()
	err = w.Commit()
	commit := time.Since(commitStart)
	close(stop)
	wg.Wait()
	if err != nil {
		return nil, err
	}
	res := &blockingResult{
		ok:          int(okC.Value()),
		failed:      int(failC.Value()),
		maxLat:      time.Duration(maxLat.Value()),
		commitDelay: commit,
	}
	if hs := lat.Snapshot(); hs.Count > 0 {
		res.meanLat = time.Duration(hs.Sum / hs.Count)
	}
	return res, nil
}

// RunE3 counts I/O deterministically: buffer-pool reads and write-backs for
// (a) one maintenance batch and (b) one full scan by a reader whose
// snapshot predates the batch — the access pattern where MV2PL pays chain
// I/O and 2VNL pays nothing extra (§6).
func RunE3(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	// Small pages and a small pool so the relation does not fit in cache
	// and page misses approximate disk I/O.
	const pageSize, poolPages = 512, 16
	t := &Table{ID: "E3", Title: fmt.Sprintf("I/O per batch of %d updates over %d tuples (%dB pages, pool %d pages)",
		cfg.Rows/10, cfg.Rows, pageSize, poolPages),
		Columns: []string{"scheme", "write reads", "write wbacks", "pool copies", "scan reads", "chain reads", "cache hits", "storage B"}}
	c := mvcc.Config{PageSize: pageSize, PoolPages: poolPages}
	cc := c
	cc.CacheSlots = 2
	mk := []func() (mvcc.Scheme, error){
		func() (mvcc.Scheme, error) { return mvcc.NewS2PL(c) },
		func() (mvcc.Scheme, error) { return mvcc.NewTwoV2PL(c) },
		func() (mvcc.Scheme, error) { return mvcc.NewMV2PL(c) },
		func() (mvcc.Scheme, error) { return mvcc.NewMV2PL(cc) },
		func() (mvcc.Scheme, error) { return mvcc.NewVNL(c, 2) },
	}
	for _, f := range mk {
		s, err := f()
		if err != nil {
			return nil, err
		}
		if err := loadScheme(s, cfg.Rows); err != nil {
			return nil, err
		}
		// For S2PL the reader must scan before the batch (it would block
		// during); versioned schemes scan with a pre-batch snapshot during
		// the open transaction.
		var pre mvcc.Reader
		if s.Name() != "S2PL" {
			pre, err = s.BeginReader()
			if err != nil {
				return nil, err
			}
		}
		before := s.Stats()
		w, err := s.BeginWriter()
		if err != nil {
			return nil, err
		}
		for k := 0; k < cfg.Rows/10; k++ {
			if err := w.Update(int64(k), int64(k+7)); err != nil {
				return nil, err
			}
		}
		if err := w.Commit(); err != nil {
			return nil, err
		}
		afterWrite := s.Stats()
		var scanReads int64
		var chainReads, cacheHits int64
		if pre != nil {
			if _, _, err := pre.ScanSum(); err != nil {
				return nil, err
			}
			afterScan := s.Stats()
			scanReads = afterScan.IO.Sub(afterWrite.IO).Reads()
			chainReads = afterScan.ChainReads - afterWrite.ChainReads
			cacheHits = afterScan.CacheHits - afterWrite.CacheHits
			pre.Close()
		} else {
			r, _ := s.BeginReader()
			pb := s.Stats()
			if _, _, err := r.ScanSum(); err != nil {
				return nil, err
			}
			pa := s.Stats()
			scanReads = pa.IO.Sub(pb.IO).Reads()
			r.Close()
		}
		wd := afterWrite.IO.Sub(before.IO)
		t.AddRow(s.Name(), wd.Reads(), wd.WriteBacks,
			afterWrite.PoolWrites-before.PoolWrites,
			scanReads, chainReads, cacheHits, afterWrite.StorageBytes)
	}
	t.Notes = append(t.Notes,
		"paper §6: 2VNL never needs additional I/Os to read or modify a tuple (both versions share its",
		"physical location), though wider tuples mean more pages per scan; CFL-style MV2PL pays one pool",
		"write per first-touch update and chain reads for old snapshots; the BC92 cache absorbs recent reads")
	return []*Table{t}, nil
}

// RunE4 validates §5's never-expire bound against the real store (see
// internal/sim): guarantee = (n−1)(i+m) − m.
func RunE4(cfg Config) ([]*Table, error) {
	t := &Table{ID: "E4", Title: "nVNL never-expire session length: formula vs measured (real store)",
		Columns: []string{"n", "gap i", "maint m", "formula", "measured", "match"}}
	cases := []struct {
		n    int
		i, m sim.Minute
	}{
		{2, 60, 1380}, {2, 10, 50}, {3, 60, 1380}, {3, 10, 50},
		{4, 10, 50}, {5, 10, 50},
	}
	for _, c := range cases {
		if cfg.Quick && c.m > 100 {
			continue
		}
		sched := sim.Schedule{Period: c.i + c.m, Duration: c.m}
		measured, err := sim.MeasureGuarantee(c.n, sched, 0)
		if err != nil {
			return nil, err
		}
		want := sim.FormulaBound(c.n, c.i, c.m)
		match := "yes"
		if measured != want+1 {
			match = fmt.Sprintf("NO (measured %d)", measured)
		}
		t.AddRow(c.n, c.i, c.m, want, measured, match)
	}
	t.Notes = append(t.Notes,
		"measured is the minimum over all arrival phases of time-to-expiry; a session of length <= formula",
		"never expires, so measured = formula + 1 at minute granularity")
	return []*Table{t}, nil
}
