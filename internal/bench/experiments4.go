package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/wal"
)

// RunE10 quantifies §7's logging claim: because a 2VNL tuple carries its
// own pre-update version, the write-ahead log needs no before-images —
// redo-only logging recovers exactly the same state a conventional
// full-image log does, at a fraction of the volume.
func RunE10(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	rows := cfg.Rows / 2
	dir, err := os.MkdirTemp("", "vnl-wal-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	schema := catalog.MustSchema("kv", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	}, "k")

	t := &Table{ID: "E10", Title: fmt.Sprintf("WAL volume and recovery: %d inserts + %d-update batches x %d",
		rows, rows/2, cfg.Batches),
		Columns: []string{"policy", "records", "log bytes", "before-image bytes", "recovery time", "state match"}}

	for _, policy := range []wal.Policy{wal.PolicyRedoOnly, wal.PolicyFullImages} {
		path := filepath.Join(dir, policy.String()+".log")
		log, err := wal.Create(path, policy)
		if err != nil {
			return nil, err
		}
		engine := db.Open(db.Options{})
		store, err := core.Open(engine, core.Options{})
		if err != nil {
			return nil, err
		}
		store.SetJournal(log)
		if _, err := store.CreateTable(schema); err != nil {
			return nil, err
		}
		m, err := store.BeginMaintenance()
		if err != nil {
			return nil, err
		}
		for k := 0; k < rows; k++ {
			if err := m.Insert("kv", catalog.Tuple{catalog.NewInt(int64(k)), catalog.NewInt(1)}); err != nil {
				return nil, err
			}
		}
		if err := m.Commit(); err != nil {
			return nil, err
		}
		for b := 0; b < cfg.Batches; b++ {
			m, err := store.BeginMaintenance()
			if err != nil {
				return nil, err
			}
			for k := 0; k < rows/2; k++ {
				if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(int64(k))},
					func(c catalog.Tuple) catalog.Tuple {
						c[1] = catalog.NewInt(int64(b + 2))
						return c
					}); err != nil {
					return nil, err
				}
			}
			if err := m.Commit(); err != nil {
				return nil, err
			}
		}
		st := log.Stats()
		if err := log.Close(); err != nil {
			return nil, err
		}

		start := time.Now()
		rec, _, _, err := wal.Recover(path, db.Options{}, core.Options{})
		recoveryTime := time.Since(start)
		if err != nil {
			return nil, err
		}
		// Compare logical states.
		match := "yes"
		want := scanState(store)
		got := scanState(rec)
		if len(want) != len(got) {
			match = fmt.Sprintf("NO (%d vs %d tuples)", len(got), len(want))
		} else {
			for k, v := range want {
				if got[k] != v {
					match = fmt.Sprintf("NO (key %d)", k)
					break
				}
			}
		}
		t.AddRow(policy.String(), st.Records, st.Bytes, st.BeforeBytes,
			recoveryTime.Round(time.Microsecond).String(), match)
	}
	t.Notes = append(t.Notes,
		"paper §7: \"maintenance transactions can execute without the need to log before-images\" —",
		"redo-only recovery replays committed transactions and skips in-flight ones entirely; aborts",
		"revert from the in-tuple pre-update versions, so the before-image share of the log is pure waste")
	return []*Table{t}, nil
}

func scanState(s *core.Store) map[int64]int64 {
	sess := s.BeginSession()
	defer sess.Close()
	out := map[int64]int64{}
	_ = sess.Scan("kv", func(b catalog.Tuple) bool {
		out[b[0].Int()] = b[1].Int()
		return true
	})
	return out
}
