// Package bench is the experiment harness: it regenerates every table and
// figure of the paper (T1–T4, F1–F7) from the running implementation and
// runs the quantitative experiments (E1–E10) that measure the paper's
// claims — storage overhead, blocking, extra I/O, expiration bounds,
// rewrite cost, maintenance-window capacity, and GC/rollback. The cmd/
// vnlbench binary is a thin CLI over this package, and bench_test.go at the
// repository root exposes the experiments as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one experiment artifact: a titled grid plus free-form notes
// (e.g. the paper's reported values for EXPERIMENTS.md comparison).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
	// Pre is preformatted content (timelines, SQL) rendered before the
	// grid.
	Pre string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	if t.Pre != "" {
		fmt.Fprintln(w, t.Pre)
	}
	if len(t.Columns) > 0 {
		widths := make([]int, len(t.Columns))
		for i, c := range t.Columns {
			widths[i] = len(c)
		}
		for _, row := range t.Rows {
			for i, cell := range row {
				if i < len(widths) && len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			for i, c := range cells {
				if i > 0 {
					fmt.Fprint(w, "  ")
				}
				fmt.Fprintf(w, "%-*s", widths[i], c)
			}
			fmt.Fprintln(w)
		}
		line(t.Columns)
		seps := make([]string, len(t.Columns))
		for i := range seps {
			seps[i] = strings.Repeat("-", widths[i])
		}
		line(seps)
		for _, row := range t.Rows {
			line(row)
		}
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment couples an ID with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) ([]*Table, error)
}

// Config tunes experiment scale; the zero value selects defaults suitable
// for interactive runs.
type Config struct {
	// Seed drives all synthetic workloads.
	Seed int64
	// Rows is the base relation size for I/O and latency experiments.
	Rows int
	// Readers is the concurrent reader count for the blocking experiment.
	Readers int
	// Batches is the number of maintenance batches to run.
	Batches int
	// Quick shrinks everything for tests.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Rows == 0 {
		c.Rows = 20000
	}
	if c.Readers == 0 {
		c.Readers = 8
	}
	if c.Batches == 0 {
		c.Batches = 10
	}
	if c.Quick {
		c.Rows = 2000
		c.Readers = 4
		c.Batches = 3
	}
	return c
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"T1", "Reader decision table (Table 1)", RunT1},
		{"T2", "Insert maintenance decision table (Table 2)", RunT2},
		{"T3", "Update maintenance decision table (Table 3)", RunT3},
		{"T4", "Delete maintenance decision table (Table 4)", RunT4},
		{"F1", "Nightly-batch operation (Figure 1)", RunF1},
		{"F2", "2VNL on-line operation (Figure 2)", RunF2},
		{"F3", "Extended DailySales schema and storage overhead (Figure 3)", RunF3},
		{"F4", "Extended relation example and reader view (Figure 4 / Example 3.2)", RunF4},
		{"F5", "Example maintenance transaction (Figure 5)", RunF5},
		{"F6", "Relation after maintenance (Figure 6)", RunF6},
		{"F7", "4VNL tuple and visibility (Figure 7 / Example 5.1)", RunF7},
		{"E1", "Storage overhead: 2VNL/nVNL vs MV2PL version pool", RunE1},
		{"E2", "Blocking: reader latency and writer commit delay by scheme", RunE2},
		{"E3", "Extra I/O per operation by scheme", RunE3},
		{"E4", "nVNL never-expire bound: formula vs measured", RunE4},
		{"E5", "Session expiration rate by policy", RunE5},
		{"E6", "Query-rewrite overhead", RunE6},
		{"E7", "Maintenance-window capacity: nightly vs 2VNL", RunE7},
		{"E8", "Garbage collection and rollback", RunE8},
		{"E9", "Indexing under 2VNL (§4.3)", RunE9},
		{"E10", "WAL volume and recovery: redo-only vs full-images (§7)", RunE10},
		{"E11", "Expiration detection ablation: global check vs per-tuple probe (§3.2)", RunE11},
		{"E13", "Parallel batch apply: maintenance window, sequential vs worker pool", RunE13},
	}
}

// Find returns the experiment with the given ID (case-insensitive).
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}
