package core

import (
	"repro/internal/catalog"
)

// ReadAsOf reconstructs a tuple's state as of session version s,
// implementing the reader decision procedure: Table 1 for 2VNL and the
// three-case analysis of §5 for nVNL.
//
// It returns the base-schema tuple and visible=true when the tuple exists
// in version s; visible=false when the tuple must be ignored (reading the
// current version of a deleted tuple, or the pre-update version of an
// inserted tuple); and ErrSessionExpired when the tuple has been modified
// by too many maintenance transactions since s (case 3: s < tupleVN(n−1)−1)
// — the per-tuple expiration detection of §3.2.
func (e *ExtTable) ReadAsOf(t catalog.Tuple, s VN) (base catalog.Tuple, visible bool, err error) {
	n := e.L.N
	tvn1 := e.TupleVN(t, 1)
	// Case 1: sessionVN >= tupleVN — read the current version.
	if s >= tvn1 {
		if e.OpAt(t, 1) == OpDelete {
			return nil, false, nil
		}
		return e.BaseValues(t), true, nil
	}
	// Case 3: the session predates even the oldest reconstructible
	// version. (Unused slots carry tupleVN 0 and never trigger this,
	// because sessions start at VN 1.)
	oldest := e.TupleVN(t, n-1)
	if oldest > 0 && s < oldest-1 {
		return nil, false, ErrSessionExpired
	}
	// Case 2: read the pre-update version for the least tupleVNj > s —
	// with slots ordered newest-first, that is the largest j whose
	// tupleVNj exceeds s.
	j := 1
	for j < n-1 && e.TupleVN(t, j+1) > s {
		j++
	}
	if e.OpAt(t, j) == OpInsert {
		// Pre-update version of an insert: the tuple did not exist.
		return nil, false, nil
	}
	base = e.BaseValues(t)
	pre := e.PreValues(t, j)
	for k, ui := range e.L.Upd {
		base[ui] = pre[k]
	}
	return base, true, nil
}

// CurrentVersion reconstructs the latest tuple state (what the maintenance
// transaction reads — it always follows the first row of Table 1, §3.3).
// visible is false for logically-deleted tuples.
func (e *ExtTable) CurrentVersion(t catalog.Tuple) (base catalog.Tuple, visible bool) {
	if e.OpAt(t, 1) == OpDelete {
		return nil, false
	}
	return e.BaseValues(t), true
}
