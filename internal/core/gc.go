package core

import (
	"repro/internal/catalog"
	"repro/internal/storage"
)

// GCStats reports one garbage-collection pass.
type GCStats struct {
	// Scanned is the number of physical tuples examined.
	Scanned int
	// Removed is the number of logically-deleted tuples physically
	// reclaimed.
	Removed int
	// BytesReclaimed is Removed × the extended tuple size, summed per
	// table.
	BytesReclaimed int
	// Err is the journal error, if any, from committing the GC
	// pseudo-transaction. The physical reclamation itself has already
	// happened; callers that need the reclamation to be recoverable must
	// check it (§7).
	Err error
}

// GC physically removes logically-deleted tuples that no current or future
// reader can need (§7 future work, implemented here). A deleted tuple with
// tupleVN = t is needed only by sessions with sessionVN < t, which read its
// pre-update version; sessions with sessionVN >= t ignore it (Table 1). It
// is therefore reclaimable once every active session has sessionVN >= t and
// the delete is committed (t <= currentVN) — new sessions always start at
// currentVN, so none can ever need it again.
//
// (The paper's §7 sketch states the stricter condition
// "tupleVN < sessionVN−1 for all active readers"; the condition used here
// additionally reclaims tuples whose deletion is exactly at the session
// floor, which Table 1 shows are already invisible to those sessions.)
//
// GC is safe to run concurrently with readers and with an active
// maintenance transaction: it only touches committed deletes (tupleVN <=
// currentVN < maintenanceVN), which the maintenance transaction would treat
// as conflict targets — so to keep Table 2's key-conflict bookkeeping
// coherent, GC skips tables while a maintenance transaction is active
// unless force is requested via GCWithFloor.
func (s *Store) GC() GCStats {
	cur, active, _ := s.readGlobals()
	if active {
		return GCStats{}
	}
	floor := cur
	if minVN, any := s.activeSessionFloor(); any && minVN < floor {
		floor = minVN
	}
	if fn := s.gcClamp.Load(); fn != nil {
		if vn, ok := (*fn)(); ok && vn < floor {
			floor = vn
		}
	}
	return s.GCWithFloor(floor)
}

// SetGCFloorClamp installs (or, with nil, removes) an external bound on the
// GC floor: each pass calls fn and, when it reports ok, reclaims nothing
// newer than the returned VN. Two callers use it. The shard router clamps
// every shard to the published cross-shard epoch, closing the race where a
// reader has loaded the epoch but not yet registered its per-shard sessions
// when GC runs with floor = currentVN. A replication primary clamps to the
// slowest replica's advertised pinned VN, so a replayed GC delete can never
// reclaim a pre-image a lagging replica session still reads.
func (s *Store) SetGCFloorClamp(fn func() (VN, bool)) {
	if fn == nil {
		s.gcClamp.Store(nil)
		return
	}
	s.gcClamp.Store(&fn)
}

// GCWithFloor reclaims logically-deleted tuples with tupleVN <= floor.
// Callers are responsible for choosing a floor no greater than the minimum
// active sessionVN and currentVN.
//
// When a journal is installed, the physical deletions are journaled as a
// committed pseudo-transaction (VN 0): without that, a later fresh insert
// of a reclaimed key would collide with the still-logically-deleted tuple
// during recovery replay.
func (s *Store) GCWithFloor(floor VN) GCStats {
	var stats GCStats
	j := s.journalOrNil()
	journalOpen := false
	for _, vt := range s.Tables() {
		e := vt.ext
		var victims []storage.RID
		vt.tbl.Scan(func(rid storage.RID, t catalog.Tuple) bool {
			stats.Scanned++
			if e.OpAt(t, 1) == OpDelete && e.TupleVN(t, 1) <= floor {
				victims = append(victims, rid)
			}
			return true
		})
		for _, rid := range victims {
			before, err := vt.tbl.Get(rid)
			if err != nil {
				continue
			}
			if err := vt.tbl.Delete(rid); err == nil {
				stats.Removed++
				stats.BytesReclaimed += e.Ext.RowBytes()
				vt.noteTupleRemoved(before)
				if j != nil {
					if !journalOpen {
						j.LogBegin(0)
						journalOpen = true
					}
					j.LogDelete(e.Base.Name, rid, before)
				}
			}
		}
	}
	if journalOpen {
		if err := j.LogCommit(0); err != nil {
			stats.Err = err
		}
	}
	mm := s.metrics
	mm.gcPasses.Inc()
	mm.gcScanned.Add(int64(stats.Scanned))
	mm.gcRemoved.Add(int64(stats.Removed))
	mm.gcBytes.Add(int64(stats.BytesReclaimed))
	mm.trace(TraceGCPass, floor, int64(stats.Removed))
	return stats
}

// DeadTuples counts logically-deleted tuples awaiting collection, per
// registered table.
func (s *Store) DeadTuples() map[string]int {
	out := make(map[string]int)
	for _, vt := range s.Tables() {
		e := vt.ext
		n := 0
		vt.tbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
			if e.OpAt(t, 1) == OpDelete {
				n++
			}
			return true
		})
		out[e.Base.Name] = n
	}
	return out
}
