package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/vfs"
)

// versionRelation is the name of the single-tuple relation that holds the
// global variables when the store runs in relation-backed mode (§4).
const versionRelation = "Version"

// Options configures a Store.
type Options struct {
	// N is the number of simultaneously available database versions;
	// 0 or 2 selects the paper's 2VNL, larger values select nVNL (§5).
	N int
	// VersionRelation stores currentVN and maintenanceActive in a
	// single-tuple Version relation read through the engine (as §4
	// prescribes for a pure query-rewrite deployment) instead of in
	// latched process memory. Reads of the global state then cost buffer
	// pool traffic, which the experiments can observe.
	VersionRelation bool
	// Metrics receives the store's instrumentation (sessions, version
	// advances, Tables 2–4 outcome cells, GC). Nil selects obs.Default(),
	// which is what the binaries render; tests pass a private registry to
	// make exact-count assertions.
	Metrics *obs.Registry
	// Tracer receives the store's state-transition events. Nil selects
	// obs.DefaultTracer(), a ring buffer of recent events.
	Tracer obs.Tracer
	// CommitRetry bounds how Commit retries a transiently failing
	// version-installation (the Version-relation update under the latch).
	// The zero value selects the defaults (3 attempts, 1 ms backoff);
	// vfs.NoRetry makes the first failure final. The latch is released
	// between attempts, and on exhaustion the transaction stays active
	// per the error-surfacing contract, so the caller can still retry or
	// roll back.
	CommitRetry vfs.RetryPolicy
	// ApplyWorkers is the default worker count for Maintenance.ApplyBatch:
	// the number of goroutines that apply hash-partitioned logical
	// operations concurrently. 0 selects GOMAXPROCS at batch time; 1 forces
	// the sequential path. Per-call override: ApplyBatchWorkers.
	ApplyWorkers int
	// PlanCacheSize bounds the ad-hoc rewrite/plan cache (entries, counting
	// both raw-text and canonical keys). 0 selects the default bound;
	// negative disables the cache entirely, restoring the parse-and-rewrite-
	// per-call path — the benchmarks use this to measure what the cache
	// saves.
	PlanCacheSize int
}

// Store is the 2VNL/nVNL controller for one database: it owns the global
// version state (currentVN, maintenanceActive), the registry of versioned
// tables, and the active reader sessions. One maintenance transaction may
// run at a time; any number of reader sessions run concurrently with it,
// lock-free: the steady-state read path (Check, table lookup, query
// execution) performs no mutex acquisition at all — see ARCHITECTURE.md's
// read-path memory model.
type Store struct {
	d    *db.Database
	n    int
	opts Options

	// mu is the latch guarding the global variables (§3: "we assume a
	// simple latching mechanism is used to read and update these global
	// variables"). Only writers take it; readers consume the published
	// snapshot below. The "guarded by mu" annotations are enforced
	// mechanically by vnlvet's guardedwrite analyzer.
	mu          sync.Mutex
	currentVN   VN           // guarded by mu
	maintActive bool         // guarded by mu
	maint       *Maintenance // guarded by mu
	// expireFloor expires sessions older than it; a logless rollback
	// raises it to currentVN because reverted tuples can no longer serve
	// their pre-update versions. Guarded by mu.
	expireFloor VN
	// journal, when non-nil, receives every physical change for
	// durability (see Journal). Guarded by mu.
	journal Journal

	// snap is the immutable published copy of (currentVN, maintActive,
	// expireFloor): the reader hot path loads it with one atomic
	// operation and never touches mu. Published under mu.
	snap atomic.Pointer[globalSnapshot]
	// tables is the copy-on-write registry of versioned relations:
	// lookup is an atomic load; mutators copy and swap. Published under
	// mu.
	tables atomic.Pointer[tableRegistry]

	// sessions is the sharded registry of live reader sessions; it has
	// its own fine-grained locks and is never touched under mu.
	sessions sessionRegistry

	// gcClamp, when set, caps the GC floor from outside the store: the
	// shard router pins it to the published cross-shard epoch, and a
	// replication primary pins it to the slowest replica's advertised
	// session floor, so physical reclamation never outruns a reader the
	// store itself cannot see. Swapped atomically; GC loads it once per
	// pass.
	gcClamp atomic.Pointer[func() (VN, bool)]

	// plans is the ad-hoc rewrite/plan cache (nil when disabled). Entries
	// invalidate by table-registry pointer, the same rule Prepared uses.
	plans *planCache

	versionTbl *db.Table // non-nil in relation-backed mode

	// adoptLoadHook, when non-nil, runs before each tuple is loaded into
	// the extended table during AdoptTable (test seam for mid-load
	// failure injection).
	adoptLoadHook func(i int) error

	// reg and metrics are the store's observability surface (never nil;
	// see Options.Metrics).
	reg     *obs.Registry
	metrics *storeMetrics

	// commitRetry is Options.CommitRetry, normalized at Open.
	commitRetry vfs.RetryPolicy
	// applyWorkers is Options.ApplyWorkers (see there).
	applyWorkers int
}

// VTable is a versioned relation managed by the store.
type VTable struct {
	store *Store
	ext   *ExtTable
	tbl   *db.Table
	// oldestHW is a high-water mark of the oldest version slot: the
	// maximum tupleVN(n−1) over the table's physical tuples. The
	// per-tuple expiration probe (§3.2's optimistic alternative) reads it
	// instead of scanning; maintenance writes raise it, and the rare
	// paths that can lower a tuple's slots (rollback, physical deletes,
	// recovery) recompute it by scan.
	oldestHW atomic.Int64
}

// Open attaches a 2VNL/nVNL store to a database. currentVN starts at 1
// (§3).
func Open(d *db.Database, opts Options) (*Store, error) {
	n := opts.N
	if n == 0 {
		n = 2
	}
	if n < 2 {
		return nil, fmt.Errorf("core: need at least 2 versions, got %d", n)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer()
	}
	s := &Store{
		d:            d,
		n:            n,
		opts:         opts,
		currentVN:    1,
		reg:          reg,
		metrics:      newStoreMetrics(reg, tracer),
		commitRetry:  opts.CommitRetry.Normalize(),
		applyWorkers: opts.ApplyWorkers,
	}
	if opts.PlanCacheSize >= 0 {
		limit := opts.PlanCacheSize
		if limit == 0 {
			limit = defaultPlanCacheEntries
		}
		s.plans = newPlanCache(limit)
	}
	// The store is not shared until Open returns, but the publish
	// discipline is cheap enough to follow even here.
	acquired := s.latchAcquire()
	empty := make(tableRegistry)
	s.tables.Store(&empty)
	s.publishLocked()
	s.latchRelease(acquired)
	s.metrics.currentVN.Set(1)
	d.Pool().Instrument(reg, "storage_pool")
	if opts.VersionRelation {
		schema := catalog.MustSchema(versionRelation, []catalog.Column{
			{Name: "currentVN", Type: catalog.TypeInt, Length: 4, Updatable: true},
			{Name: "maintenanceActive", Type: catalog.TypeBool, Length: 1, Updatable: true},
		})
		vt, err := d.CreateTable(schema)
		if err != nil {
			return nil, fmt.Errorf("core: creating Version relation: %w", err)
		}
		if _, err := vt.Insert(catalog.Tuple{catalog.NewInt(1), catalog.NewBool(false)}); err != nil {
			return nil, err
		}
		s.versionTbl = vt
	}
	return s, nil
}

// N returns the number of simultaneously available versions.
func (s *Store) N() int { return s.n }

// DB returns the underlying database.
func (s *Store) DB() *db.Database { return s.d }

// globals reads (currentVN, maintenanceActive) without the latch. In
// relation-backed mode it reads the Version relation through the engine,
// paying buffer-pool traffic; otherwise it reads the published snapshot.
func (s *Store) globals() (VN, bool) {
	vn, active, _ := s.readGlobals()
	return vn, active
}

func (s *Store) globalsLocked() (VN, bool) {
	if s.versionTbl != nil {
		return s.scanVersionRelation()
	}
	return s.currentVN, s.maintActive
}

// scanVersionRelation reads the single Version tuple. Page latches inside
// the engine make the read safe without the store latch.
func (s *Store) scanVersionRelation() (VN, bool) {
	var vn VN
	var active bool
	s.versionTbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		vn = VN(t[0].Int())
		active = t[1].Bool()
		return false
	})
	return vn, active
}

// setGlobalsLocked installs (currentVN, maintenanceActive) and publishes
// the new snapshot. In relation-backed mode the Version relation is
// updated first: if that write fails nothing is installed, so latched
// memory, the snapshot, and the relation never diverge — the caller
// (commit, rollback, begin) sees the error with the transaction still in
// its prior state.
func (s *Store) setGlobalsLocked(vn VN, active bool) error {
	if s.versionTbl != nil {
		var rid storage.RID
		found := false
		s.versionTbl.Scan(func(r storage.RID, _ catalog.Tuple) bool {
			rid = r
			found = true
			return false
		})
		if !found {
			return fmt.Errorf("core: Version relation holds no tuple")
		}
		if err := s.versionTbl.Update(rid, catalog.Tuple{catalog.NewInt(int64(vn)), catalog.NewBool(active)}); err != nil {
			return fmt.Errorf("core: updating Version relation: %w", err)
		}
	}
	s.currentVN, s.maintActive = vn, active
	s.publishLocked()
	return nil
}

// CurrentVN returns the committed database version number.
func (s *Store) CurrentVN() VN {
	vn, _ := s.globals()
	return vn
}

// MaintenanceActive reports whether a maintenance transaction is running.
func (s *Store) MaintenanceActive() bool {
	_, a := s.globals()
	return a
}

// CreateTable creates a versioned relation: the base schema is extended per
// §3.1/§5 and the extended table is created in the engine. The base
// schema's key (for summary tables, the group-by attributes) becomes the
// extended table's unique key, served by a hash index — which is unaffected
// by 2VNL because key attributes are never updatable (§4.3).
func (s *Store) CreateTable(base *catalog.Schema) (*VTable, error) {
	ext, err := ExtendSchema(base, s.n)
	if err != nil {
		return nil, err
	}
	tbl, err := s.d.CreateTable(ext.Ext)
	if err != nil {
		return nil, err
	}
	vt := &VTable{store: s, ext: ext, tbl: tbl}
	// Journal the create record before taking the latch: the append may
	// block on I/O and the §3 latch must stay short-duration. The record
	// still precedes any tuple record for the table because the table is
	// not visible to writers until registered below.
	if j := s.journalOrNil(); j != nil {
		j.LogCreate(base)
	}
	s.mu.Lock()
	s.registerTableLocked(base.Name, vt)
	s.mu.Unlock()
	return vt, nil
}

// registerTableLocked publishes a copy of the table registry with vt added.
func (s *Store) registerTableLocked(name string, vt *VTable) {
	old := *s.tables.Load()
	next := make(tableRegistry, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[strings.ToLower(name)] = vt
	s.tables.Store(&next)
}

// CreateTableSQL parses a CREATE TABLE statement (with UPDATABLE column
// markers and UNIQUE KEY clause) and creates the versioned relation.
func (s *Store) CreateTableSQL(text string) (*VTable, error) {
	schema, err := parseCreate(text)
	if err != nil {
		return nil, err
	}
	return s.CreateTable(schema)
}

// AdoptTable brings an existing unversioned table in the database under
// 2VNL management: a new extended table replaces it, with every existing
// tuple recorded as inserted at version 1 (pre-existing data is visible to
// every possible session).
//
// The extended table is created under a temporary name and fully loaded
// before anything is journaled or dropped; the original table is removed
// only once the replacement is complete, so a create or mid-load failure
// leaves the user's table exactly as it was and registers nothing.
func (s *Store) AdoptTable(name string) (*VTable, error) {
	old, err := s.d.TableOf(name)
	if err != nil {
		return nil, err
	}
	base := old.Schema().Clone()
	var tuples []catalog.Tuple
	old.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		tuples = append(tuples, t)
		return true
	})
	ext, err := ExtendSchema(base, s.n)
	if err != nil {
		return nil, err
	}
	tmpSchema := ext.Ext.Clone()
	tmpSchema.Name = base.Name + "__adopting"
	tbl, err := s.d.CreateTable(tmpSchema)
	if err != nil {
		return nil, fmt.Errorf("core: adopting %s: %w", name, err)
	}
	vt := &VTable{store: s, ext: ext, tbl: tbl}
	var extTuples []catalog.Tuple
	var rids []storage.RID
	for i, t := range tuples {
		if s.adoptLoadHook != nil {
			if err := s.adoptLoadHook(i); err != nil {
				_ = s.d.DropTable(tmpSchema.Name)
				return nil, fmt.Errorf("core: adopting %s: %w", name, err)
			}
		}
		extTuple := ext.NewExtTuple(t, 1)
		rid, err := tbl.Insert(extTuple)
		if err != nil {
			_ = s.d.DropTable(tmpSchema.Name)
			return nil, fmt.Errorf("core: adopting %s: %w", name, err)
		}
		vt.noteTupleWrite(extTuple)
		extTuples = append(extTuples, extTuple)
		rids = append(rids, rid)
	}
	// The load succeeded: journal the adoption (create record plus a
	// committed pseudo-transaction carrying the initial tuples), then make
	// the swap visible.
	if j := s.journalOrNil(); j != nil {
		j.LogCreate(base)
		j.LogBegin(0)
		for i, extTuple := range extTuples {
			j.LogInsert(base.Name, rids[i], extTuple)
		}
		if err := j.LogCommit(0); err != nil {
			_ = s.d.DropTable(tmpSchema.Name)
			return nil, fmt.Errorf("core: adopting %s: %w", name, err)
		}
	}
	if err := s.d.DropTable(name); err != nil {
		_ = s.d.DropTable(tmpSchema.Name)
		return nil, err
	}
	if err := s.d.RenameTable(tmpSchema.Name, ext.Ext.Name); err != nil {
		return nil, fmt.Errorf("core: adopting %s: %w", name, err)
	}
	s.mu.Lock()
	s.registerTableLocked(base.Name, vt)
	s.mu.Unlock()
	return vt, nil
}

// Table returns the versioned relation registered under name.
func (s *Store) Table(name string) (*VTable, error) {
	vt := s.lookup(name)
	if vt == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	return vt, nil
}

// Tables lists the registered versioned relations, sorted by name. The
// deterministic order matters beyond cosmetics: checkpoint and GC iterate
// this list, and the crash harness replays their I/O by operation index,
// which must not depend on map iteration order.
func (s *Store) Tables() []*VTable {
	reg := *s.tables.Load()
	out := make([]*VTable, 0, len(reg))
	for _, vt := range reg {
		out = append(out, vt)
	}
	sort.Slice(out, func(i, j int) bool {
		return out[i].Base().Name < out[j].Base().Name
	})
	return out
}

// lookup returns the registered table for name without error wrapping. It
// is a single atomic load — the query path resolves every table reference
// through here, lock-free.
func (s *Store) lookup(name string) *VTable {
	return (*s.tables.Load())[strings.ToLower(name)]
}

// Base returns the relation's base (user-visible) schema.
func (v *VTable) Base() *catalog.Schema { return v.ext.Base }

// Extended returns the relation's physical extended schema.
func (v *VTable) Extended() *catalog.Schema { return v.ext.Ext }

// Ext returns the schema-extension descriptor.
func (v *VTable) Ext() *ExtTable { return v.ext }

// Storage returns the underlying engine table (for storage accounting and
// tests).
func (v *VTable) Storage() *db.Table { return v.tbl }

// Len returns the number of physical tuples, including logically-deleted
// ones awaiting garbage collection.
func (v *VTable) Len() int { return v.tbl.Len() }

// noteTupleWrite raises the oldest-slot high-water mark to cover a tuple
// the maintenance path just wrote. Lock-free: concurrent raises converge on
// the maximum.
func (v *VTable) noteTupleWrite(ext catalog.Tuple) {
	ovn := int64(v.ext.TupleVN(ext, v.ext.L.N-1))
	for {
		cur := v.oldestHW.Load()
		if ovn <= cur || v.oldestHW.CompareAndSwap(cur, ovn) {
			return
		}
	}
}

// noteTupleRemoved recomputes the high-water mark if the physically removed
// tuple may have carried it.
func (v *VTable) noteTupleRemoved(ext catalog.Tuple) {
	if int64(v.ext.TupleVN(ext, v.ext.L.N-1)) >= v.oldestHW.Load() {
		v.recomputeOldestHW()
	}
}

// recomputeOldestHW rescans the table for the true maximum oldest-slot
// tupleVN. It runs only on single-writer paths (rollback, GC, recovery),
// where no concurrent maintenance write can race the scan.
func (v *VTable) recomputeOldestHW() {
	e := v.ext
	oldest := e.L.N - 1
	var max int64
	v.tbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		if vn := int64(e.TupleVN(t, oldest)); vn > max {
			max = vn
		}
		return true
	})
	v.oldestHW.Store(max)
}

// activeSessionFloor returns the smallest sessionVN among live sessions and
// whether any session is live. The garbage collector and the
// commit-when-quiet policy use it.
func (s *Store) activeSessionFloor() (VN, bool) {
	return s.sessions.floor()
}

// SessionFloor is the exported form of the active-session floor: the
// smallest sessionVN among live reader sessions, and whether any session is
// live at all. A replication follower advertises it to its primary so the
// primary's GC never reclaims a pre-image a lagging replica session still
// reads.
func (s *Store) SessionFloor() (VN, bool) {
	return s.activeSessionFloor()
}

// ActiveSessions returns the number of live reader sessions.
func (s *Store) ActiveSessions() int {
	return s.sessions.count()
}

// queryCatalog adapts the store for the executor: registered tables resolve
// to their extended form (the rewrite layer injects the version logic), and
// unregistered names fall through to the plain database.
type queryCatalog struct{ s *Store }

func (qc queryCatalog) Table(name string) (exec.Table, error) {
	if vt := qc.s.lookup(name); vt != nil {
		return vt.tbl, nil
	}
	return qc.s.d.Table(name)
}
