package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/storage"
)

// versionRelation is the name of the single-tuple relation that holds the
// global variables when the store runs in relation-backed mode (§4).
const versionRelation = "Version"

// Options configures a Store.
type Options struct {
	// N is the number of simultaneously available database versions;
	// 0 or 2 selects the paper's 2VNL, larger values select nVNL (§5).
	N int
	// VersionRelation stores currentVN and maintenanceActive in a
	// single-tuple Version relation read through the engine (as §4
	// prescribes for a pure query-rewrite deployment) instead of in
	// latched process memory. Reads of the global state then cost buffer
	// pool traffic, which the experiments can observe.
	VersionRelation bool
	// Metrics receives the store's instrumentation (sessions, version
	// advances, Tables 2–4 outcome cells, GC). Nil selects obs.Default(),
	// which is what the binaries render; tests pass a private registry to
	// make exact-count assertions.
	Metrics *obs.Registry
	// Tracer receives the store's state-transition events. Nil selects
	// obs.DefaultTracer(), a ring buffer of recent events.
	Tracer obs.Tracer
}

// Store is the 2VNL/nVNL controller for one database: it owns the global
// version state (currentVN, maintenanceActive), the registry of versioned
// tables, and the active reader sessions. One maintenance transaction may
// run at a time; any number of reader sessions run concurrently with it,
// lock-free.
type Store struct {
	d    *db.Database
	n    int
	opts Options

	// mu is the latch guarding the global variables and the session and
	// table registries (§3: "we assume a simple latching mechanism is used
	// to read and update these global variables"). The "guarded by mu"
	// annotations below are enforced mechanically by vnlvet's guardedwrite
	// analyzer.
	mu          sync.Mutex
	currentVN   VN                    // guarded by mu
	maintActive bool                  // guarded by mu
	maint       *Maintenance          // guarded by mu
	tables      map[string]*VTable    // guarded by mu; lower-cased base name
	sessions    map[*Session]struct{} // guarded by mu
	versionTbl  *db.Table             // non-nil in relation-backed mode
	// expireFloor expires sessions older than it; a logless rollback
	// raises it to currentVN because reverted tuples can no longer serve
	// their pre-update versions. Guarded by mu.
	expireFloor VN
	// journal, when non-nil, receives every physical change for
	// durability (see Journal). Guarded by mu.
	journal Journal

	// reg and metrics are the store's observability surface (never nil;
	// see Options.Metrics).
	reg     *obs.Registry
	metrics *storeMetrics
}

// VTable is a versioned relation managed by the store.
type VTable struct {
	store *Store
	ext   *ExtTable
	tbl   *db.Table
}

// Open attaches a 2VNL/nVNL store to a database. currentVN starts at 1
// (§3).
func Open(d *db.Database, opts Options) (*Store, error) {
	n := opts.N
	if n == 0 {
		n = 2
	}
	if n < 2 {
		return nil, fmt.Errorf("core: need at least 2 versions, got %d", n)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.Default()
	}
	tracer := opts.Tracer
	if tracer == nil {
		tracer = obs.DefaultTracer()
	}
	s := &Store{
		d:         d,
		n:         n,
		opts:      opts,
		currentVN: 1,
		tables:    make(map[string]*VTable),
		sessions:  make(map[*Session]struct{}),
		reg:       reg,
		metrics:   newStoreMetrics(reg, tracer),
	}
	s.metrics.currentVN.Set(1)
	d.Pool().Instrument(reg, "storage_pool")
	if opts.VersionRelation {
		schema := catalog.MustSchema(versionRelation, []catalog.Column{
			{Name: "currentVN", Type: catalog.TypeInt, Length: 4, Updatable: true},
			{Name: "maintenanceActive", Type: catalog.TypeBool, Length: 1, Updatable: true},
		})
		vt, err := d.CreateTable(schema)
		if err != nil {
			return nil, fmt.Errorf("core: creating Version relation: %w", err)
		}
		if _, err := vt.Insert(catalog.Tuple{catalog.NewInt(1), catalog.NewBool(false)}); err != nil {
			return nil, err
		}
		s.versionTbl = vt
	}
	return s, nil
}

// N returns the number of simultaneously available versions.
func (s *Store) N() int { return s.n }

// DB returns the underlying database.
func (s *Store) DB() *db.Database { return s.d }

// globals reads (currentVN, maintenanceActive). In relation-backed mode it
// reads the Version relation through the engine, paying buffer-pool
// traffic; otherwise it reads latched memory.
func (s *Store) globals() (VN, bool) {
	acquired := s.latchAcquire()
	vn, active := s.globalsLocked()
	s.latchRelease(acquired)
	return vn, active
}

func (s *Store) globalsLocked() (VN, bool) {
	if s.versionTbl != nil {
		var vn VN
		var active bool
		s.versionTbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
			vn = VN(t[0].Int())
			active = t[1].Bool()
			return false
		})
		return vn, active
	}
	return s.currentVN, s.maintActive
}

func (s *Store) setGlobalsLocked(vn VN, active bool) {
	s.currentVN, s.maintActive = vn, active
	if s.versionTbl != nil {
		var rid storage.RID
		s.versionTbl.Scan(func(r storage.RID, _ catalog.Tuple) bool {
			rid = r
			return false
		})
		_ = s.versionTbl.Update(rid, catalog.Tuple{catalog.NewInt(int64(vn)), catalog.NewBool(active)})
	}
}

// CurrentVN returns the committed database version number.
func (s *Store) CurrentVN() VN {
	vn, _ := s.globals()
	return vn
}

// MaintenanceActive reports whether a maintenance transaction is running.
func (s *Store) MaintenanceActive() bool {
	_, a := s.globals()
	return a
}

// CreateTable creates a versioned relation: the base schema is extended per
// §3.1/§5 and the extended table is created in the engine. The base
// schema's key (for summary tables, the group-by attributes) becomes the
// extended table's unique key, served by a hash index — which is unaffected
// by 2VNL because key attributes are never updatable (§4.3).
func (s *Store) CreateTable(base *catalog.Schema) (*VTable, error) {
	ext, err := ExtendSchema(base, s.n)
	if err != nil {
		return nil, err
	}
	tbl, err := s.d.CreateTable(ext.Ext)
	if err != nil {
		return nil, err
	}
	vt := &VTable{store: s, ext: ext, tbl: tbl}
	// Journal the create record before taking the latch: the append may
	// block on I/O and the §3 latch must stay short-duration. The record
	// still precedes any tuple record for the table because the table is
	// not visible to writers until registered below.
	if j := s.journalOrNil(); j != nil {
		j.LogCreate(base)
	}
	s.mu.Lock()
	s.tables[strings.ToLower(base.Name)] = vt
	s.mu.Unlock()
	return vt, nil
}

// CreateTableSQL parses a CREATE TABLE statement (with UPDATABLE column
// markers and UNIQUE KEY clause) and creates the versioned relation.
func (s *Store) CreateTableSQL(text string) (*VTable, error) {
	schema, err := parseCreate(text)
	if err != nil {
		return nil, err
	}
	return s.CreateTable(schema)
}

// AdoptTable brings an existing unversioned table in the database under
// 2VNL management: a new extended table replaces it, with every existing
// tuple recorded as inserted at version 1 (pre-existing data is visible to
// every possible session). The original table is dropped.
func (s *Store) AdoptTable(name string) (*VTable, error) {
	old, err := s.d.TableOf(name)
	if err != nil {
		return nil, err
	}
	base := old.Schema().Clone()
	var tuples []catalog.Tuple
	old.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		tuples = append(tuples, t)
		return true
	})
	if err := s.d.DropTable(name); err != nil {
		return nil, err
	}
	vt, err := s.CreateTable(base)
	if err != nil {
		return nil, err
	}
	j := s.journalOrNil()
	if j != nil {
		j.LogBegin(0) // pseudo-transaction for the initial load
	}
	for _, t := range tuples {
		extTuple := vt.ext.NewExtTuple(t, 1)
		rid, err := vt.tbl.Insert(extTuple)
		if err != nil {
			return nil, fmt.Errorf("core: adopting %s: %w", name, err)
		}
		if j != nil {
			j.LogInsert(base.Name, rid, extTuple)
		}
	}
	if j != nil {
		if err := j.LogCommit(0); err != nil {
			return nil, err
		}
	}
	return vt, nil
}

// Table returns the versioned relation registered under name.
func (s *Store) Table(name string) (*VTable, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	vt := s.tables[strings.ToLower(name)]
	if vt == nil {
		return nil, fmt.Errorf("%w: %q", ErrNotRegistered, name)
	}
	return vt, nil
}

// Tables lists the registered versioned relations.
func (s *Store) Tables() []*VTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*VTable, 0, len(s.tables))
	for _, vt := range s.tables {
		out = append(out, vt)
	}
	return out
}

// lookup returns the registered table for name without error wrapping.
func (s *Store) lookup(name string) *VTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tables[strings.ToLower(name)]
}

// Base returns the relation's base (user-visible) schema.
func (v *VTable) Base() *catalog.Schema { return v.ext.Base }

// Extended returns the relation's physical extended schema.
func (v *VTable) Extended() *catalog.Schema { return v.ext.Ext }

// Ext returns the schema-extension descriptor.
func (v *VTable) Ext() *ExtTable { return v.ext }

// Storage returns the underlying engine table (for storage accounting and
// tests).
func (v *VTable) Storage() *db.Table { return v.tbl }

// Len returns the number of physical tuples, including logically-deleted
// ones awaiting garbage collection.
func (v *VTable) Len() int { return v.tbl.Len() }

// activeSessionFloor returns the smallest sessionVN among live sessions and
// whether any session is live. The garbage collector and the
// commit-when-quiet policy use it.
func (s *Store) activeSessionFloor() (VN, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var minVN VN
	any := false
	for sess := range s.sessions {
		if !any || sess.vn < minVN {
			minVN = sess.vn
			any = true
		}
	}
	return minVN, any
}

// ActiveSessions returns the number of live reader sessions.
func (s *Store) ActiveSessions() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

// queryCatalog adapts the store for the executor: registered tables resolve
// to their extended form (the rewrite layer injects the version logic), and
// unregistered names fall through to the plain database.
type queryCatalog struct{ s *Store }

func (qc queryCatalog) Table(name string) (exec.Table, error) {
	if vt := qc.s.lookup(name); vt != nil {
		return vt.tbl, nil
	}
	return qc.s.d.Table(name)
}
