package core

import (
	"strings"
	"testing"

	"repro/internal/catalog"
)

// TestNVNLRewriteSQL checks the generalized §5 rewrite: for n = 4 the CASE
// walks the version slots newest-first and the visibility predicate has one
// arm per slot.
func TestNVNLRewriteSQL(t *testing.T) {
	s := newStore(t, 4)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	sess := s.BeginSession()
	defer sess.Close()
	out, err := sess.Rewrite(`SELECT k, v FROM kv WHERE v > 0`)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"CASE WHEN (:sessionVN >= tupleVN1) THEN v WHEN (:sessionVN >= tupleVN2) THEN pre1_v WHEN (:sessionVN >= tupleVN3) THEN pre2_v ELSE pre3_v END",
		"(operation1 <> 'delete')",
		"(operation1 <> 'insert')",
		"(operation2 <> 'insert')",
		"(operation3 <> 'insert')",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("n=4 rewrite missing %q:\n%s", frag, out)
		}
	}
}

// TestNVNLSQLReadsMatchScan runs the full Example 5.1 history and checks
// the SQL query path agrees with the programmatic ReadAsOf path at every
// still-valid session version.
func TestNVNLSQLReadsMatchScan(t *testing.T) {
	s := newStore(t, 4)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	key := catalog.Tuple{catalog.NewInt(1)}
	// insert@2 v=10, update@3 v=20, delete@4, insert@5 v=50, update@6 v=60.
	steps := []func(m *Maintenance) error{
		func(m *Maintenance) error { return m.Insert("kv", kvTuple(1, 10)) },
		func(m *Maintenance) error {
			_, err := m.UpdateKey("kv", key, func(c catalog.Tuple) catalog.Tuple {
				c[1] = catalog.NewInt(20)
				return c
			})
			return err
		},
		func(m *Maintenance) error { _, err := m.DeleteKey("kv", key); return err },
		func(m *Maintenance) error { return m.Insert("kv", kvTuple(1, 50)) },
		func(m *Maintenance) error {
			_, err := m.UpdateKey("kv", key, func(c catalog.Tuple) catalog.Tuple {
				c[1] = catalog.NewInt(60)
				return c
			})
			return err
		},
	}
	// Keep one session per version alive so we can query as of each.
	sessions := map[VN]*Session{1: s.BeginSession()}
	for _, step := range steps {
		m := mustMaint(t, s)
		if err := step(m); err != nil {
			t.Fatal(err)
		}
		commit(t, m)
		sessions[s.CurrentVN()] = s.BeginSession()
	}
	defer func() {
		for _, sess := range sessions {
			sess.Close()
		}
	}()
	// Expected logical state by version: 1: none, 2: 10, 3: 20, 4: none,
	// 5: 50, 6: 60. With n=4 and currentVN=6, sessions >= 3 are valid.
	want := map[VN]int64{3: 20, 4: -1, 5: 50, 6: 60} // -1 = not visible
	for vn, sess := range sessions {
		expect, checked := want[vn]
		if !checked {
			continue // expired versions
		}
		rows, err := sess.Query(`SELECT v FROM kv WHERE k = 1`, nil)
		if err != nil {
			t.Errorf("vn %d: %v", vn, err)
			continue
		}
		if expect == -1 {
			if rows.Len() != 0 {
				t.Errorf("vn %d: visible %v, want none", vn, rows.Tuples)
			}
			continue
		}
		if rows.Len() != 1 || rows.Tuples[0][0].Int() != expect {
			t.Errorf("vn %d: SQL read %v, want %d", vn, rows.Tuples, expect)
		}
		// Agreement with the scan path.
		tu, visible, err := sess.Get("kv", key)
		if err != nil || !visible || tu[1].Int() != expect {
			t.Errorf("vn %d: Get = %v %v %v, want %d", vn, tu, visible, err, expect)
		}
	}
	// Sessions 1 and 2 overlapped more than n−1 = 3 maintenance
	// transactions and must be expired.
	for _, vn := range []VN{1, 2} {
		if err := sessions[vn].Check(); err != ErrSessionExpired {
			t.Errorf("vn %d: Check = %v, want expired", vn, err)
		}
	}
}

// TestNVNLPopFrontPreservesHistory pins the §5 corner case the paper
// leaves unenumerated (resurrect then delete in one transaction) through
// the SQL path.
func TestNVNLPopFrontPreservesHistory(t *testing.T) {
	s := newStore(t, 3)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	key := catalog.Tuple{catalog.NewInt(1)}
	m := mustMaint(t, s) // VN 2
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	sessAt2 := s.BeginSession()
	defer sessAt2.Close()
	m = mustMaint(t, s) // VN 3: delete
	if _, err := m.DeleteKey("kv", key); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	sessAt3 := s.BeginSession()
	defer sessAt3.Close()
	m = mustMaint(t, s) // VN 4: re-insert, then delete again (nets to nothing)
	if err := m.Insert("kv", kvTuple(1, 99)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteKey("kv", key); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	// The VN-2 session must still see v=10; the VN-3 session must see
	// nothing.
	rows, err := sessAt2.Query(`SELECT v FROM kv`, nil)
	if err != nil || rows.Len() != 1 || rows.Tuples[0][0].Int() != 10 {
		t.Errorf("VN-2 session after pop-front: %v %v", rows, err)
	}
	rows, err = sessAt3.Query(`SELECT v FROM kv`, nil)
	if err != nil || rows.Len() != 0 {
		t.Errorf("VN-3 session after pop-front: %v %v", rows, err)
	}
}

// TestNVNLStorageGrowth: the extension cost grows linearly in n (§5's
// "the higher n is, the more overhead we incur").
func TestNVNLStorageGrowth(t *testing.T) {
	base := dailySalesSchema()
	prev := 0
	var deltas []int
	for n := 2; n <= 6; n++ {
		e, err := ExtendSchema(base, n)
		if err != nil {
			t.Fatal(err)
		}
		_, extB, _ := e.Overhead()
		if prev > 0 {
			deltas = append(deltas, extB-prev)
		}
		prev = extB
	}
	for i := 1; i < len(deltas); i++ {
		if deltas[i] != deltas[0] {
			t.Errorf("non-linear slot cost: deltas %v", deltas)
		}
	}
	// Each extra slot costs tupleVN + operation + one pre-update copy of
	// total_sales = 4 + 1 + 4 = 9 bytes.
	if len(deltas) > 0 && deltas[0] != 9 {
		t.Errorf("per-slot cost = %d bytes, want 9", deltas[0])
	}
}
