package core

import "repro/internal/catalog"

// This file is the store's surface for WAL-shipping replication followers
// (internal/repl): the replica's applier performs the same physical
// operations the primary's maintenance path performed, then publishes each
// replayed VN through the identical atomic snapshot swap, so replica reader
// sessions run the unmodified lock-free path at their replayed version.

// InstallReplayedVN publishes vn as the committed database version — the
// replication follower's equivalent of a maintenance commit. Unlike
// SetCurrentVN (crash recovery) it does not rescan the per-table oldest-slot
// watermarks: the replica applier maintains them per physical operation via
// NoteReplayedWrite/NoteReplayedRemove, exactly as the primary's write path
// does, so publish stays O(1) per replayed transaction. The snapshot swap
// inside setGlobalsLocked is the release barrier: every physical write the
// transaction made happens-before a reader session observing the new VN.
func (s *Store) InstallReplayedVN(vn VN) error {
	s.mu.Lock()
	err := s.setGlobalsLocked(vn, false)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	m := s.metrics
	m.vnAdvances.Inc()
	m.currentVN.Set(int64(vn))
	m.trace(TraceVNAdvance, vn, 0)
	return nil
}

// NoteReplayedWrite raises the oldest-slot high-water mark for a tuple the
// replica applier just inserted or updated (mirrors the maintenance path's
// noteTupleWrite).
func (v *VTable) NoteReplayedWrite(ext catalog.Tuple) { v.noteTupleWrite(ext) }

// NoteReplayedRemove recomputes the high-water mark if a physically removed
// tuple may have carried it (mirrors noteTupleRemoved). The replica applier
// is the store's only writer, so the recompute scan is safe.
func (v *VTable) NoteReplayedRemove(ext catalog.Tuple) { v.noteTupleRemoved(ext) }

// NoteReplayedUpdate maintains the high-water mark across a replayed
// in-place update. An update record can both raise the mark (a new version
// pushed into the slots) and lower it (a net-effect fold that popped the
// oldest slot — Table 4 row 2 — looks like any other update on the wire),
// so this mirrors the primary's physUpdate + noteTupleLowered pairing:
// raise to cover the after-image, then recompute if the before-image may
// have carried the mark.
func (v *VTable) NoteReplayedUpdate(before, after catalog.Tuple) {
	v.noteTupleWrite(after)
	v.noteTupleRemoved(before)
}
