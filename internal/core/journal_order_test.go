package core

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// recordingJournal records the sequence of journal calls and can inject a
// commit failure. It backs the regression tests for the vnlvet latchsafety
// and walerr fixes: LogCreate and LogBegin moved out of the latched
// sections, and GC now surfaces a failed commit force instead of blanking
// it — neither change may reorder the write-ahead record sequence.
type recordingJournal struct {
	calls     []string
	commitErr error
}

func (r *recordingJournal) LogCreate(base *catalog.Schema) {
	r.calls = append(r.calls, "create:"+base.Name)
}
func (r *recordingJournal) LogBegin(vn VN) { r.calls = append(r.calls, "begin") }
func (r *recordingJournal) LogInsert(table string, rid storage.RID, after catalog.Tuple) {
	r.calls = append(r.calls, "insert:"+table)
}
func (r *recordingJournal) LogUpdate(table string, rid storage.RID, before, after catalog.Tuple) {
	r.calls = append(r.calls, "update:"+table)
}
func (r *recordingJournal) LogDelete(table string, rid storage.RID, before catalog.Tuple) {
	r.calls = append(r.calls, "delete:"+table)
}
func (r *recordingJournal) LogCommit(vn VN) error {
	r.calls = append(r.calls, "commit")
	return r.commitErr
}
func (r *recordingJournal) LogAbort(vn VN) { r.calls = append(r.calls, "abort") }

// TestJournalRecordOrder checks the write-ahead record sequence now that
// LogCreate and LogBegin are emitted outside the latch: the create record
// must still precede the begin record, and the begin record every tuple
// record of its transaction.
func TestJournalRecordOrder(t *testing.T) {
	s := newStore(t, 2)
	j := &recordingJournal{}
	s.SetJournal(j)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	want := []string{"create:kv", "begin", "insert:kv", "commit"}
	if len(j.calls) != len(want) {
		t.Fatalf("journal calls = %v, want %v", j.calls, want)
	}
	for i := range want {
		if j.calls[i] != want[i] {
			t.Fatalf("journal calls = %v, want %v", j.calls, want)
		}
	}
}

// TestGCReportsJournalCommitError checks that a failed commit force of the
// GC pseudo-transaction is surfaced in GCStats.Err rather than discarded:
// callers that need the reclamation to be recoverable must see the failure.
func TestGCReportsJournalCommitError(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	m = mustMaint(t, s)
	if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	commit(t, m)

	// Install the failing journal only now: the logically-deleted tuple is
	// in place, so the GC pass journals its physical delete and the commit
	// force fails.
	boom := errors.New("boom: force failed")
	s.SetJournal(&recordingJournal{commitErr: boom})
	stats := s.GCWithFloor(s.CurrentVN())
	if stats.Removed == 0 {
		t.Fatalf("GC removed nothing: %+v", stats)
	}
	if !errors.Is(stats.Err, boom) {
		t.Fatalf("GCStats.Err = %v, want %v", stats.Err, boom)
	}

	// A clean pass reports no error.
	if stats := s.GC(); stats.Err != nil {
		t.Fatalf("clean GC pass reported error %v", stats.Err)
	}
}
