package core

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/sql"
)

// stressTuples and stressSum define the invariant the stress harness
// checks: maintenance transactions only move value between keys, so every
// consistent read of the table sums to stressSum.
const (
	stressTuples = 16
	stressSum    = int64(stressTuples * 100)
)

// TestStressReadersDuringMaintenance is the concurrency proof for the
// lock-free read path: many reader goroutines hammer pre-parsed queries
// while one maintenance loop commits and rolls back transactions, across
// both rollback modes and both global-variable backings. Run it under
// -race (the CI stress job does); the invariant checks catch logical
// races, the race detector catches memory ones.
func TestStressReadersDuringMaintenance(t *testing.T) {
	cases := []struct {
		name     string
		mode     RollbackMode
		relation bool
	}{
		{"undolog-memory", RollbackUndoLog, false},
		{"undolog-relation", RollbackUndoLog, true},
		{"logless-memory", RollbackLogless, false},
		{"logless-relation", RollbackLogless, true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			runStress(t, tc.mode, tc.relation)
		})
	}
}

func runStress(t *testing.T, mode RollbackMode, relation bool) {
	reg := obs.NewRegistry()
	s := newStore(t, 2, func(o *Options) {
		o.VersionRelation = relation
		o.Metrics = reg
	})
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	for k := int64(0); k < stressTuples; k++ {
		if err := m.Insert("kv", kvTuple(k, 100)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)

	sel, err := sql.ParseSelect(`SELECT SUM(v), COUNT(*) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}

	const readers = 4
	iterations := 250
	if testing.Short() {
		iterations = 60
	}

	var wgReaders, wgWriter sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, readers+1)

	// Writer: move value between key pairs; roll back every fifth
	// transaction so both the commit and the rollback paths race readers.
	wgWriter.Add(1)
	go func() {
		defer wgWriter.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m, err := s.BeginMaintenanceMode(mode, true)
			if err != nil {
				errCh <- fmt.Errorf("writer begin: %w", err)
				return
			}
			a, b := int64(i%stressTuples), int64((i+7)%stressTuples)
			for _, mv := range []struct{ k, d int64 }{{a, -10}, {b, +10}} {
				mv := mv
				if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(mv.k)},
					func(c catalog.Tuple) catalog.Tuple {
						c[1] = catalog.NewInt(c[1].Int() + mv.d)
						return c
					}); err != nil {
					errCh <- fmt.Errorf("writer update: %w", err)
					m.Rollback()
					return
				}
			}
			var fin error
			if i%5 == 4 {
				fin = m.Rollback()
			} else {
				fin = m.Commit()
			}
			if fin != nil {
				errCh <- fmt.Errorf("writer finish: %w", fin)
				return
			}
		}
	}()

	for r := 0; r < readers; r++ {
		wgReaders.Add(1)
		go func() {
			defer wgReaders.Done()
			for i := 0; i < iterations; i++ {
				sess := s.BeginSession()
				for q := 0; q < 3; q++ {
					rows, err := sess.QueryStmt(sel, nil)
					if errors.Is(err, ErrSessionExpired) {
						break // expected under churn; begin a fresh session
					}
					if err != nil {
						errCh <- fmt.Errorf("reader query: %w", err)
						sess.Close()
						return
					}
					sum, count := rows.Tuples[0][0].Int(), rows.Tuples[0][1].Int()
					if sum != stressSum || count != stressTuples {
						errCh <- fmt.Errorf("reader observed inconsistent state: sum=%d count=%d (session VN %d)", sum, count, sess.VN())
						sess.Close()
						return
					}
					if err := sess.Check(); err != nil && !errors.Is(err, ErrSessionExpired) {
						errCh <- fmt.Errorf("reader check: %w", err)
						sess.Close()
						return
					}
				}
				sess.Close()
			}
		}()
	}
	wgReaders.Wait() // the writer churns the whole time readers run
	close(stop)
	wgWriter.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Quiesced: the invariant holds for a fresh session, every session is
	// unregistered, and the Add-based gauge agrees with the registry.
	sess := s.BeginSession()
	rows, err := sess.QueryStmt(sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum := rows.Tuples[0][0].Int(); sum != stressSum {
		t.Errorf("final sum = %d, want %d", sum, stressSum)
	}
	sess.Close()
	if n := s.ActiveSessions(); n != 0 {
		t.Errorf("ActiveSessions = %d after quiesce", n)
	}
	if g := reg.GaugeValue("core_sessions_active"); g != 0 {
		t.Errorf("core_sessions_active gauge = %d after quiesce", g)
	}
	// Watermarks survived the churn (commits, rollbacks) exactly.
	for _, vt := range s.Tables() {
		assertWatermark(t, s, vt)
	}
}

// TestSessionSharedAcrossGoroutines uses one Session from many goroutines
// at once — queries, checks, gets — while maintenance advances the
// version, then closes it from every goroutine concurrently. The session's
// mutable state is atomic, so under -race this passes clean.
func TestSessionSharedAcrossGoroutines(t *testing.T) {
	reg := obs.NewRegistry()
	s := newStore(t, 2, func(o *Options) { o.Metrics = reg })
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	for k := int64(0); k < 8; k++ {
		if err := m.Insert("kv", kvTuple(k, 1)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)

	sel, err := sql.ParseSelect(`SELECT COUNT(*) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.BeginSession()

	const users = 8
	var wg sync.WaitGroup
	errCh := make(chan error, users)
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := sess.QueryStmt(sel, nil); err != nil &&
					!errors.Is(err, ErrSessionExpired) && !errors.Is(err, ErrSessionClosed) {
					errCh <- err
					return
				}
				if err := sess.Check(); err != nil &&
					!errors.Is(err, ErrSessionExpired) && !errors.Is(err, ErrSessionClosed) {
					errCh <- err
					return
				}
				if _, _, err := sess.Get("kv", catalog.Tuple{catalog.NewInt(int64(i % 8))}); err != nil &&
					!errors.Is(err, ErrSessionExpired) && !errors.Is(err, ErrSessionClosed) {
					errCh <- err
					return
				}
			}
		}()
	}
	// Advance the version underneath the shared session.
	m = mustMaint(t, s)
	if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(0)},
		func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewInt(2); return c }); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Concurrent Close: exactly one wins, the rest are no-ops.
	var wgClose sync.WaitGroup
	for u := 0; u < users; u++ {
		wgClose.Add(1)
		go func() {
			defer wgClose.Done()
			sess.Close()
		}()
	}
	wgClose.Wait()
	if got := reg.CounterValue("core_sessions_closed_total"); got != 1 {
		t.Errorf("sessions closed counter = %d, want 1", got)
	}
	if g := reg.GaugeValue("core_sessions_active"); g != 0 {
		t.Errorf("core_sessions_active gauge = %d, want 0", g)
	}
	if err := sess.Check(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("Check after concurrent Close = %v", err)
	}
}

// TestMidQueryVersionAdvanceExpires pins the post-query half of the
// expiration protocol: when the session silently expires between execution
// and the result being returned (a second maintenance transaction began),
// QueryStmt reports ErrSessionExpired instead of handing back a result the
// session's version can no longer vouch for.
func TestMidQueryVersionAdvanceExpires(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	commit(t, m) // currentVN = 2

	sel, err := sql.ParseSelect(`SELECT SUM(v) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	sess := s.BeginSession() // VN 2
	defer sess.Close()
	var held *Maintenance
	sess.midQueryHook = func() {
		// Commit one transaction and begin another: with n = 2 the
		// session's version is now more than n−1 transactions behind.
		m := mustMaint(t, s)
		commit(t, m) // currentVN = 3
		held = mustMaint(t, s)
	}
	if _, err := sess.QueryStmt(sel, nil); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("QueryStmt with mid-query version advance = %v, want ErrSessionExpired", err)
	}
	sess.midQueryHook = nil
	commit(t, held)

	// Per-tuple (optimistic) discipline: the session expires only when a
	// tuple it could need becomes unreconstructible mid-query — here, the
	// same key updated by two committed transactions while the query runs.
	pt := s.BeginSessionPerTupleExpiry()
	defer pt.Close()
	bump := func() {
		m := mustMaint(t, s)
		if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(1)},
			func(c catalog.Tuple) catalog.Tuple {
				c[1] = catalog.NewInt(c[1].Int() + 1)
				return c
			}); err != nil {
			t.Fatal(err)
		}
		commit(t, m)
	}
	pt.midQueryHook = func() { bump(); bump() }
	if _, err := pt.QueryStmt(sel, nil); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("per-tuple QueryStmt with mid-query overwrites = %v, want ErrSessionExpired", err)
	}
}

// TestActiveSessionsGaugeTracksRegistry pins the Add-based gauge
// accounting: the gauge moves with every begin/close (idempotently for
// double closes) and always equals the sharded registry's count.
func TestActiveSessionsGaugeTracksRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	s := newStore(t, 2, func(o *Options) { o.Metrics = reg })
	check := func(want int64) {
		t.Helper()
		if g := reg.GaugeValue("core_sessions_active"); g != want {
			t.Errorf("gauge = %d, want %d", g, want)
		}
		if n := int64(s.ActiveSessions()); n != want {
			t.Errorf("ActiveSessions = %d, want %d", n, want)
		}
	}
	var sessions []*Session
	for i := 0; i < 5; i++ {
		sessions = append(sessions, s.BeginSession())
	}
	check(5)
	sessions[0].Close()
	sessions[0].Close() // idempotent: must not decrement twice
	sessions[1].Close()
	check(3)
	for _, sess := range sessions[2:] {
		sess.Close()
	}
	check(0)
}
