package core

import (
	"errors"
	"testing"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// TestMaintenanceExclusive enforces the one-writer-at-a-time protocol.
func TestMaintenanceExclusive(t *testing.T) {
	s := newStore(t, 2)
	m := mustMaint(t, s)
	if _, err := s.BeginMaintenance(); !errors.Is(err, ErrMaintenanceActive) {
		t.Errorf("second BeginMaintenance = %v", err)
	}
	commit(t, m)
	m2 := mustMaint(t, s)
	if m2.VN() != 3 {
		t.Errorf("next maintenanceVN = %d, want 3", m2.VN())
	}
	if err := m2.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Version numbers are not consumed by aborts.
	m3 := mustMaint(t, s)
	if m3.VN() != 3 {
		t.Errorf("maintenanceVN after abort = %d, want 3", m3.VN())
	}
	commit(t, m3)
	// Finished transactions reject further work.
	if err := m3.Commit(); !errors.Is(err, ErrMaintenanceDone) {
		t.Errorf("double commit = %v", err)
	}
	if err := m3.Rollback(); !errors.Is(err, ErrMaintenanceDone) {
		t.Errorf("rollback after commit = %v", err)
	}
	if err := m3.Insert("kv", kvTuple(1, 1)); !errors.Is(err, ErrMaintenanceDone) {
		t.Errorf("insert after commit = %v", err)
	}
}

// snapshotAll captures the full physical state of a table.
func snapshotAll(t *testing.T, s *Store, table string) map[string]string {
	t.Helper()
	vt, err := s.Table(table)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string)
	vt.Storage().Scan(func(rid storage.RID, tu catalog.Tuple) bool {
		out[rid.String()] = tu.String()
		return true
	})
	return out
}

func sameSnapshot(a, b map[string]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

// TestRollbackUndoLogExactRestore verifies the undo-log rollback restores
// the physical state byte for byte and leaves sessions untouched.
func TestRollbackUndoLogExactRestore(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s).Close()
	before := snapshotAll(t, s, "DailySales")
	sess := s.BeginSession() // VN 4
	defer sess.Close()

	m, err := s.BeginMaintenanceMode(RollbackUndoLog, true)
	if err != nil {
		t.Fatal(err)
	}
	// Touch everything: update, delete, insert, insert-over-delete, and a
	// repeated update.
	if _, err := m.Exec(`UPDATE DailySales SET total_sales = total_sales + 7 WHERE state = 'CA'`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(`DELETE FROM DailySales WHERE city = 'Berkeley'`, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("DailySales", salesTuple(t, "Fresno", "skis", "10/16/96", 123)); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("DailySales", salesTuple(t, "Novato", "rollerblades", "10/13/96", 50)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(`UPDATE DailySales SET total_sales = 1 WHERE city = 'San Jose'`, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	after := snapshotAll(t, s, "DailySales")
	if !sameSnapshot(before, after) {
		t.Errorf("undo-log rollback did not restore state:\nbefore: %v\nafter:  %v", before, after)
	}
	if s.CurrentVN() != 4 || s.MaintenanceActive() {
		t.Errorf("globals after rollback: VN=%d active=%v", s.CurrentVN(), s.MaintenanceActive())
	}
	if err := sess.Check(); err != nil {
		t.Errorf("session affected by undo-log rollback: %v", err)
	}
	// The store is immediately usable for the next transaction.
	m2 := mustMaint(t, s)
	if m2.VN() != 5 {
		t.Errorf("next VN = %d", m2.VN())
	}
	commit(t, m2)
}

// TestRollbackLogless verifies the §7-style logless rollback: the current
// version is restored using only in-tuple information, new sessions read
// correct data, and sessions older than currentVN are expired.
func TestRollbackLogless(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s).Close()
	oldSess := s.BeginSession() // VN 4 — current, should survive
	defer oldSess.Close()

	// Re-create an older session by noting VN 3 readers: after the VN-4
	// commit in setupFigure4, a VN-3 session is still valid.
	// (setupFigure4's own session was closed; make the state: currentVN=4,
	// so a session opened now is VN 4. To get a VN-3-like older session we
	// instead verify via the expireFloor that older sessions die.)

	currentView := func(sess *Session) map[string]int64 {
		out := map[string]int64{}
		err := sess.Scan("DailySales", func(b catalog.Tuple) bool {
			out[b[0].Str()+"/"+b[2].Str()+"/"+b[3].String()] = b[4].Int()
			return true
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := currentView(oldSess)

	m, err := s.BeginMaintenanceMode(RollbackLogless, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(`UPDATE DailySales SET total_sales = total_sales * 2 WHERE state = 'CA'`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Exec(`DELETE FROM DailySales WHERE city = 'San Jose' AND date = '10/15/96'`, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("DailySales", salesTuple(t, "Fresno", "skis", "10/16/96", 9)); err != nil {
		t.Fatal(err)
	}
	// Resurrect the logically-deleted Novato tuple, then roll back.
	if err := m.Insert("DailySales", salesTuple(t, "Novato", "rollerblades", "10/13/96", 777)); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	if s.CurrentVN() != 4 || s.MaintenanceActive() {
		t.Errorf("globals after logless rollback: VN=%d active=%v", s.CurrentVN(), s.MaintenanceActive())
	}
	// A fresh session sees exactly the pre-transaction current version.
	fresh := s.BeginSession()
	defer fresh.Close()
	got := currentView(fresh)
	if len(got) != len(want) {
		t.Fatalf("logless rollback: %d visible tuples, want %d\n got %v\nwant %v", len(got), len(want), got, want)
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("logless rollback: %s = %d, want %d", k, got[k], v)
		}
	}
	// The VN-4 session (equal to currentVN) survives...
	if err := oldSess.Check(); err != nil {
		t.Errorf("currentVN session expired by logless rollback: %v", err)
	}
	// ...but the rollback raised the expire floor: a hypothetical older
	// session is now expired. Simulate one.
	older := &Session{store: s, vn: 3}
	s.sessions.add(older)
	if err := older.Check(); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("pre-currentVN session after logless rollback: %v, want expired", err)
	}
	older.Close()
}

// TestNetEffectAblation shows why §3.3's net-effect rule matters: with the
// folding disabled, a reader of the previous version is shown a tuple that
// should not exist in its version.
func TestNetEffectAblation(t *testing.T) {
	run := func(netEffect bool) (sawGhost bool) {
		s := newStore(t, 2)
		if _, err := s.CreateTable(kvSchema()); err != nil {
			t.Fatal(err)
		}
		m, err := s.BeginMaintenanceMode(RollbackUndoLog, netEffect)
		if err != nil {
			t.Fatal(err)
		}
		// Insert then update in one transaction: net effect must stay
		// insert. If it is (incorrectly) recorded as update, a reader of
		// the pre-update version reads the NULL pre-update attributes of a
		// tuple that did not exist in its version.
		if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
			t.Fatal(err)
		}
		if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(1)},
			func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewInt(11); return c }); err != nil {
			t.Fatal(err)
		}
		// Reader at VN 1 (the version before this transaction).
		vt, _ := s.Table("kv")
		vt.Storage().Scan(func(_ storage.RID, tu catalog.Tuple) bool {
			_, visible, err := vt.Ext().ReadAsOf(tu, 1)
			if err == nil && visible {
				sawGhost = true
			}
			return true
		})
		commit(t, m)
		return sawGhost
	}
	if run(true) {
		t.Error("with net-effect folding, the VN-1 reader must ignore the inserted tuple")
	}
	if !run(false) {
		t.Error("ablation inert: disabling net-effect folding should surface a ghost tuple to the VN-1 reader")
	}
}

// TestMaintenanceExecSQLExamples runs the paper's §4.2 statement-rewrite
// examples end to end through the SQL interface: the insert with key
// conflict (Example 4.2), the cursor update (Example 4.3), and the cursor
// delete (Example 4.4).
func TestMaintenanceExecSQLExamples(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s).Close()

	m := mustMaint(t, s) // VN 5
	// Example 4.3: add 1000 to San Jose sales on a date. (The paper uses
	// 10/13/96; our Figure-4 state has San Jose rows on 10/14 and 10/15,
	// so use 10/14.)
	n, err := m.Exec(`UPDATE DailySales SET total_sales = total_sales + 1000
		WHERE city = 'San Jose' AND date = '10/14/96'`, nil)
	if err != nil || n != 1 {
		t.Fatalf("update: n=%d err=%v", n, err)
	}
	// Example 4.2: insert with a key conflict against the logically
	// deleted Novato tuple.
	n, err = m.Exec(`INSERT INTO DailySales VALUES ('Novato', 'CA', 'rollerblades', '10/13/96', 6000)`, nil)
	if err != nil || n != 1 {
		t.Fatalf("insert: n=%d err=%v", n, err)
	}
	// Example 4.4: delete by predicate.
	n, err = m.Exec(`DELETE FROM DailySales WHERE city = 'Berkeley'`, nil)
	if err != nil || n != 1 {
		t.Fatalf("delete: n=%d err=%v", n, err)
	}
	// The maintenance transaction reads its own writes (current version).
	rows, err := m.Query(`SELECT SUM(total_sales) FROM DailySales`, nil)
	if err != nil {
		t.Fatal(err)
	}
	// 11000 (SJ 10/14) + 1500 (SJ 10/15) + 6000 (Novato) = 18500; Berkeley deleted.
	if got := rows.Tuples[0][0].Int(); got != 18500 {
		t.Errorf("maintenance view sum = %d, want 18500", got)
	}
	st := m.Stats()
	if st.LogicalInserts != 1 || st.LogicalUpdates != 1 || st.LogicalDeletes != 1 {
		t.Errorf("logical stats: %+v", st)
	}
	if st.PhysicalInserts != 0 {
		t.Errorf("the conflicting insert must be a physical update: %+v", st)
	}
	commit(t, m)

	// Parameters flow through maintenance SQL too.
	m = mustMaint(t, s)
	n, err = m.Exec(`UPDATE DailySales SET total_sales = total_sales + :delta WHERE city = :c`,
		map[string]catalog.Value{"delta": catalog.NewInt(5), "c": catalog.NewString("Novato")})
	if err != nil || n != 1 {
		t.Fatalf("param update: n=%d err=%v", n, err)
	}
	if _, err := m.Exec(`SELECT 1`, nil); err == nil {
		t.Error("maintenance Exec accepted a SELECT")
	}
	commit(t, m)
}

// TestGC verifies garbage collection of logically-deleted tuples honours
// active sessions (§7 future work).
func TestGC(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s).Close() // Novato is logically deleted at VN 4
	if dead := s.DeadTuples()["DailySales"]; dead != 1 {
		t.Fatalf("dead tuples = %d, want 1", dead)
	}
	// A session at VN 3 still needs the deleted Novato tuple (it reads the
	// pre-delete version).
	holdout := &Session{store: s, vn: 3}
	s.sessions.add(holdout)
	if st := s.GC(); st.Removed != 0 {
		t.Errorf("GC removed %d tuples while a VN-3 session needs them", st.Removed)
	}
	holdout.Close()
	// Now reclaimable: every remaining reader has sessionVN >= 4.
	st := s.GC()
	if st.Removed != 1 || st.BytesReclaimed != 51 {
		t.Errorf("GC = %+v, want 1 tuple / 51 bytes", st)
	}
	if dead := s.DeadTuples()["DailySales"]; dead != 0 {
		t.Errorf("dead tuples after GC = %d", dead)
	}
	// The key is free for fresh inserts again.
	m := mustMaint(t, s)
	if err := m.Insert("DailySales", salesTuple(t, "Novato", "rollerblades", "10/13/96", 1)); err != nil {
		t.Errorf("insert after GC: %v", err)
	}
	if st := m.Stats(); st.PhysicalInserts != 1 {
		t.Errorf("insert after GC should be physical: %+v", st)
	}
	// GC is a no-op while maintenance is active.
	if st := s.GC(); st.Scanned != 0 {
		t.Errorf("GC ran during maintenance: %+v", st)
	}
	commit(t, m)
}

// TestAdoptTable brings a populated plain table under 2VNL management.
func TestAdoptTable(t *testing.T) {
	s := newStore(t, 2)
	d := s.DB()
	if _, err := d.Exec(`CREATE TABLE kv (k INT(8), v INT(8) UPDATABLE, UNIQUE KEY(k))`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO kv VALUES (1, 10), (2, 20)`, nil); err != nil {
		t.Fatal(err)
	}
	vt, err := s.AdoptTable("kv")
	if err != nil {
		t.Fatal(err)
	}
	if vt.Len() != 2 {
		t.Fatalf("adopted %d tuples", vt.Len())
	}
	// Adopted tuples are visible to every session.
	sess := s.BeginSession()
	defer sess.Close()
	rows, err := sess.Query(`SELECT SUM(v) FROM kv`, nil)
	if err != nil || rows.Tuples[0][0].Int() != 30 {
		t.Fatalf("adopted query: %v %v", err, rows)
	}
	// And maintainable.
	m := mustMaint(t, s)
	if _, err := m.Exec(`UPDATE kv SET v = v + 1 WHERE k = 1`, nil); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	s2 := s.BeginSession()
	defer s2.Close()
	rows, _ = s2.Query(`SELECT SUM(v) FROM kv`, nil)
	if rows.Tuples[0][0].Int() != 31 {
		t.Errorf("after maintenance on adopted table: %v", rows.Tuples[0])
	}
	// Adopting a missing table fails.
	if _, err := s.AdoptTable("missing"); err == nil {
		t.Error("adopted a missing table")
	}
}

// TestCreateTableSQLAndReservedNames covers the SQL DDL path and the
// reserved-column collision check.
func TestCreateTableSQLAndReservedNames(t *testing.T) {
	s := newStore(t, 2)
	vt, err := s.CreateTableSQL(`CREATE TABLE t (k INT(8), v INT(8) UPDATABLE, UNIQUE KEY(k))`)
	if err != nil {
		t.Fatal(err)
	}
	if vt.Extended().ColIndex("pre_v") < 0 {
		t.Errorf("extended schema missing pre_v: %v", vt.Extended())
	}
	if _, err := s.CreateTableSQL(`CREATE TABLE bad (tupleVN INT, v INT UPDATABLE)`); err == nil {
		t.Error("reserved column name accepted")
	}
	if _, err := s.CreateTableSQL(`CREATE TABLE bad2 (k INT, pre_v INT, v INT UPDATABLE)`); err == nil {
		t.Error("pre_-colliding column name accepted")
	}
	if _, err := s.CreateTableSQL(`SELECT 1`); err == nil {
		t.Error("non-DDL accepted")
	}
	if _, err := Open(s.DB(), Options{N: 1}); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := ExtendSchema(kvSchema(), 1); err == nil {
		t.Error("ExtendSchema n=1 accepted")
	}
}

// TestKeylessTable exercises the always-row-3 insert path and scan-based
// maintenance on a relation without a unique key.
func TestKeylessTable(t *testing.T) {
	s := newStore(t, 2)
	schema := catalog.MustSchema("log", []catalog.Column{
		{Name: "tag", Type: catalog.TypeString, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	})
	if _, err := s.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	for i := int64(0); i < 3; i++ {
		if err := m.Insert("log", catalog.Tuple{catalog.NewString("a"), catalog.NewInt(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate rows are fine without a key.
	if err := m.Insert("log", catalog.Tuple{catalog.NewString("a"), catalog.NewInt(0)}); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	m = mustMaint(t, s)
	n, err := m.Exec(`UPDATE log SET v = v + 100 WHERE tag = 'a'`, nil)
	if err != nil || n != 4 {
		t.Fatalf("keyless update: n=%d err=%v", n, err)
	}
	// Values are now 100, 101, 102, 100: delete the two >= 101.
	n, err = m.Exec(`DELETE FROM log WHERE v >= 101`, nil)
	if err != nil || n != 2 {
		t.Fatalf("keyless delete: n=%d err=%v", n, err)
	}
	commit(t, m)
	sess := s.BeginSession()
	defer sess.Close()
	rows, err := sess.Query(`SELECT COUNT(*), SUM(v) FROM log`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Tuples[0][0].Int() != 2 || rows.Tuples[0][1].Int() != 200 {
		t.Errorf("keyless final state: %v", rows.Tuples[0])
	}
}

// TestUpdateRejectsKeyChange: maintenance updates may only change updatable
// attributes.
func TestUpdateRejectsKeyChange(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	m = mustMaint(t, s)
	_, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(1)}, func(c catalog.Tuple) catalog.Tuple {
		c[0] = catalog.NewInt(2) // illegal: k is not updatable
		return c
	})
	if err == nil {
		t.Error("update of non-updatable column accepted")
	}
	commit(t, m)
}
