package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// kvSchema is a minimal keyed schema: k (key), v (updatable).
func kvSchema() *catalog.Schema {
	return catalog.MustSchema("kv", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	}, "k")
}

func kvTuple(k, v int64) catalog.Tuple {
	return catalog.Tuple{catalog.NewInt(k), catalog.NewInt(v)}
}

// TestTable1Exhaustive enumerates every cell of Table 1: for each recorded
// operation and each relation of sessionVN to tupleVN, the reader must
// extract the right version (or ignore the tuple, or report expiration).
func TestTable1Exhaustive(t *testing.T) {
	ext, err := ExtendSchema(kvSchema(), 2)
	if err != nil {
		t.Fatal(err)
	}
	const tvn = VN(5)
	mkTuple := func(op Op, cur, pre int64) catalog.Tuple {
		tu := make(catalog.Tuple, len(ext.Ext.Columns))
		for i := range tu {
			tu[i] = catalog.Null
		}
		ext.SetSlot(tu, 1, tvn, op)
		ext.SetBaseValues(tu, kvTuple(1, cur))
		if op == OpInsert {
			ext.SetPreValues(tu, 1, ext.NullPre())
		} else {
			ext.SetPreValues(tu, 1, catalog.Tuple{catalog.NewInt(pre)})
		}
		return tu
	}
	cases := []struct {
		op      Op
		s       VN
		visible bool
		value   int64 // when visible
		expired bool
	}{
		// Current version (sessionVN >= tupleVN).
		{OpInsert, tvn, true, 100, false},
		{OpInsert, tvn + 3, true, 100, false},
		{OpUpdate, tvn, true, 100, false},
		{OpDelete, tvn, false, 0, false}, // ignore tuple
		// Pre-update version (sessionVN = tupleVN − 1).
		{OpInsert, tvn - 1, false, 0, false}, // ignore tuple
		{OpUpdate, tvn - 1, true, 50, false}, // read pre-update values
		{OpDelete, tvn - 1, true, 50, false}, // read pre-delete values
		// Expired (sessionVN < tupleVN − 1).
		{OpInsert, tvn - 2, false, 0, true},
		{OpUpdate, tvn - 2, false, 0, true},
		{OpDelete, tvn - 2, false, 0, true},
	}
	for _, c := range cases {
		tu := mkTuple(c.op, 100, 50)
		base, visible, err := ext.ReadAsOf(tu, c.s)
		name := fmt.Sprintf("op=%s s=%d tvn=%d", c.op, c.s, tvn)
		if c.expired {
			if !errors.Is(err, ErrSessionExpired) {
				t.Errorf("%s: err = %v, want ErrSessionExpired", name, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if visible != c.visible {
			t.Errorf("%s: visible = %v, want %v", name, visible, c.visible)
			continue
		}
		if visible {
			if got := base[1].Int(); got != c.value {
				t.Errorf("%s: v = %d, want %d", name, got, c.value)
			}
			// Non-updatable attributes always come from the current
			// values (Table 1's note).
			if base[0].Int() != 1 {
				t.Errorf("%s: non-updatable k = %v", name, base[0])
			}
		}
	}
}

// TestTable2Cells drives the insert decision table: fresh insert, conflict
// with an earlier delete, conflict with a same-transaction delete, and the
// impossible cells.
func TestTable2Cells(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	vt, _ := s.Table("kv")
	e := vt.Ext()

	slot1 := func(k int64) (VN, Op, string, int64) {
		rid, ok := vt.Storage().SearchKey(catalog.Tuple{catalog.NewInt(k)})
		if !ok {
			t.Fatalf("key %d not found", k)
		}
		tu, _ := vt.Storage().Get(rid)
		return e.TupleVN(tu, 1), e.OpAt(tu, 1), e.PreValues(tu, 1)[0].String(), e.BaseValues(tu)[1].Int()
	}

	// Row 3: no conflicting tuple → physical insert.
	m := mustMaint(t, s) // VN 2
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	if st := m.Stats(); st.PhysicalInserts != 1 {
		t.Errorf("fresh insert physical ops: %+v", st)
	}
	// Impossible: insert a key this transaction just inserted.
	if err := m.Insert("kv", kvTuple(1, 11)); !errors.Is(err, ErrInvalidMaintenanceOp) {
		t.Errorf("insert over live same-txn key: %v", err)
	}
	// Row 2: delete then insert in the same transaction → net update...
	// except the tuple was inserted in this same transaction, so the
	// delete is physical and the re-insert is fresh (net: insert).
	if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("kv", kvTuple(1, 12)); err != nil {
		t.Fatal(err)
	}
	if tvn, op, _, v := slot1(1); tvn != 2 || op != OpInsert || v != 12 {
		t.Errorf("insert/delete/insert same txn: (%d, %s, v=%d), want (2, insert, 12)", tvn, op, v)
	}
	commit(t, m)

	// Delete by an earlier transaction, then insert: Table 2 row 1.
	m = mustMaint(t, s) // VN 3
	if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	m = mustMaint(t, s) // VN 4
	if err := m.Insert("kv", kvTuple(1, 40)); err != nil {
		t.Fatalf("insert over earlier delete (row 1): %v", err)
	}
	if tvn, op, pre, v := slot1(1); tvn != 4 || op != OpInsert || pre != "null" || v != 40 {
		t.Errorf("row 1 result: (%d, %s, pre=%s, v=%d), want (4, insert, null, 40)", tvn, op, pre, v)
	}
	// Impossible: insert over a live key updated earlier (simulate with
	// another key).
	if err := m.Insert("kv", kvTuple(2, 20)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	m = mustMaint(t, s) // VN 5
	if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(2)}, func(c catalog.Tuple) catalog.Tuple {
		c[1] = catalog.NewInt(21)
		return c
	}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("kv", kvTuple(2, 22)); !errors.Is(err, ErrInvalidMaintenanceOp) {
		t.Errorf("insert over updated live key: %v", err)
	}
	// Row 2 proper: delete (of a pre-existing tuple) then insert in the
	// same transaction nets to update, preserving the pre-transaction
	// value in the pre-update attributes.
	if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("kv", kvTuple(2, 25)); err != nil {
		t.Fatal(err)
	}
	if tvn, op, pre, v := slot1(2); tvn != 5 || op != OpUpdate || pre != "20" || v != 25 {
		t.Errorf("row 2 result: (%d, %s, pre=%s, v=%d), want (5, update, 20, 25)", tvn, op, pre, v)
	}
	commit(t, m)
}

// TestTable3And4Cells drives the update and delete decision tables,
// including net effects and impossible cells.
func TestTable3And4Cells(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	vt, _ := s.Table("kv")
	e := vt.Ext()
	key := catalog.Tuple{catalog.NewInt(1)}
	slot1 := func() (VN, Op, string, int64) {
		rid, ok := vt.Storage().SearchKey(key)
		if !ok {
			return 0, OpNone, "", 0
		}
		tu, _ := vt.Storage().Get(rid)
		return e.TupleVN(tu, 1), e.OpAt(tu, 1), e.PreValues(tu, 1)[0].String(), e.BaseValues(tu)[1].Int()
	}
	setV := func(v int64) func(catalog.Tuple) catalog.Tuple {
		return func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewInt(v); return c }
	}

	m := mustMaint(t, s) // VN 2
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	// Table 3 row 2 (prev insert, same txn): CV ← MV, op stays insert.
	if _, err := m.UpdateKey("kv", key, setV(11)); err != nil {
		t.Fatal(err)
	}
	if tvn, op, pre, v := slot1(); tvn != 2 || op != OpInsert || pre != "null" || v != 11 {
		t.Errorf("update of same-txn insert: (%d, %s, %s, %d), want (2, insert, null, 11)", tvn, op, pre, v)
	}
	commit(t, m)

	m = mustMaint(t, s) // VN 3
	// Table 3 row 1 (prev insert, earlier txn): PV ← CV, CV ← MV.
	if _, err := m.UpdateKey("kv", key, setV(30)); err != nil {
		t.Fatal(err)
	}
	if tvn, op, pre, v := slot1(); tvn != 3 || op != OpUpdate || pre != "11" || v != 30 {
		t.Errorf("first update: (%d, %s, %s, %d), want (3, update, 11, 30)", tvn, op, pre, v)
	}
	// Table 3 row 2 (prev update, same txn): CV ← MV only — PV keeps the
	// pre-transaction value so readers aren't shown a mid-transaction
	// state.
	if _, err := m.UpdateKey("kv", key, setV(31)); err != nil {
		t.Fatal(err)
	}
	if tvn, op, pre, v := slot1(); tvn != 3 || op != OpUpdate || pre != "11" || v != 31 {
		t.Errorf("second update same txn: (%d, %s, %s, %d), want (3, update, 11, 31)", tvn, op, pre, v)
	}
	// Table 4 row 2 (prev update, same txn): op ← delete, PV untouched.
	if _, err := m.DeleteKey("kv", key); err != nil {
		t.Fatal(err)
	}
	if tvn, op, pre, v := slot1(); tvn != 3 || op != OpDelete || pre != "11" || v != 31 {
		t.Errorf("delete of same-txn update: (%d, %s, %s, %d), want (3, delete, 11, 31)", tvn, op, pre, v)
	}
	// Impossible: update or delete of a deleted tuple. The cursor APIs
	// skip invisible tuples (that is how SQL statements behave), so probe
	// the low-level error path directly.
	rid, _ := vt.Storage().SearchKey(key)
	ext, _ := vt.Storage().Get(rid)
	if err := m.ap.applyUpdate(vt, rid, ext, kvTuple(1, 99)); !errors.Is(err, ErrInvalidMaintenanceOp) {
		t.Errorf("update of deleted tuple: %v", err)
	}
	if err := m.ap.applyDelete(vt, rid, ext); !errors.Is(err, ErrInvalidMaintenanceOp) {
		t.Errorf("delete of deleted tuple: %v", err)
	}
	// UpdateKey/DeleteKey on the deleted tuple report "not found".
	if found, err := m.UpdateKey("kv", key, setV(0)); err != nil || found {
		t.Errorf("UpdateKey on deleted = (%v, %v), want (false, nil)", found, err)
	}
	commit(t, m)

	// Table 4 row 1 (prev update, earlier txn): PV ← CV, op ← delete.
	m = mustMaint(t, s)                                    // VN 4
	if err := m.Insert("kv", kvTuple(1, 40)); err != nil { // over the deleted tuple
		t.Fatal(err)
	}
	commit(t, m)
	m = mustMaint(t, s) // VN 5
	if _, err := m.DeleteKey("kv", key); err != nil {
		t.Fatal(err)
	}
	if tvn, op, pre, v := slot1(); tvn != 5 || op != OpDelete || pre != "40" || v != 40 {
		t.Errorf("delete row 1: (%d, %s, %s, %d), want (5, delete, 40, 40)", tvn, op, pre, v)
	}
	st := m.Stats()
	if st.PhysicalDeletes != 0 {
		t.Errorf("logical delete of pre-existing tuple must be a physical update: %+v", st)
	}
	commit(t, m)

	// Table 4 row 2 (prev insert, same txn): physical delete.
	m = mustMaint(t, s) // VN 6
	if err := m.Insert("kv", kvTuple(7, 70)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	if _, ok := vt.Storage().SearchKey(catalog.Tuple{catalog.NewInt(7)}); ok {
		t.Error("insert+delete same txn must physically remove the tuple")
	}
	if st := m.Stats(); st.PhysicalDeletes != 1 {
		t.Errorf("physical delete not counted: %+v", st)
	}
	commit(t, m)
}

// oracle keeps the full logical history: for every committed version, the
// complete k→v map. It is the ground truth the property test compares 2VNL
// reconstruction against.
type oracle struct {
	history []map[int64]int64 // history[vn] = state as of version vn+1... index by vn-1
}

func newOracle() *oracle {
	return &oracle{history: []map[int64]int64{{}}} // version 1 = empty
}

func (o *oracle) commit(next map[int64]int64) {
	cp := make(map[int64]int64, len(next))
	for k, v := range next {
		cp[k] = v
	}
	o.history = append(o.history, cp)
}

func (o *oracle) at(vn VN) map[int64]int64 { return o.history[vn-1] }

// TestVersionReconstructionProperty drives random maintenance transactions
// against both the 2VNL/nVNL store and a full-history oracle, then checks
// that every still-reconstructible version matches the oracle exactly, and
// every older version reports expiration on at least the tuples that
// require it.
func TestVersionReconstructionProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw%3) // n ∈ {2,3,4}
		rng := rand.New(rand.NewSource(seed))
		s := newStore(t, n)
		if _, err := s.CreateTable(kvSchema()); err != nil {
			t.Fatal(err)
		}
		o := newOracle()
		state := map[int64]int64{}
		const keys = 8
		numTxns := 3 + rng.Intn(5)
		for txn := 0; txn < numTxns; txn++ {
			m, err := s.BeginMaintenance()
			if err != nil {
				t.Logf("seed %d: begin: %v", seed, err)
				return false
			}
			ops := 1 + rng.Intn(6)
			for i := 0; i < ops; i++ {
				k := int64(rng.Intn(keys))
				_, live := state[k]
				switch {
				case !live:
					v := rng.Int63n(1000)
					if err := m.Insert("kv", kvTuple(k, v)); err != nil {
						t.Logf("seed %d: insert: %v", seed, err)
						return false
					}
					state[k] = v
				case rng.Intn(2) == 0:
					v := rng.Int63n(1000)
					found, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(k)},
						func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewInt(v); return c })
					if err != nil || !found {
						t.Logf("seed %d: update: %v %v", seed, found, err)
						return false
					}
					state[k] = v
				default:
					found, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(k)})
					if err != nil || !found {
						t.Logf("seed %d: delete: %v %v", seed, found, err)
						return false
					}
					delete(state, k)
				}
			}
			if err := m.Commit(); err != nil {
				return false
			}
			o.commit(state)
		}
		// Check every version against the oracle.
		vt, _ := s.Table("kv")
		e := vt.Ext()
		cur := s.CurrentVN()
		for vn := VN(1); vn <= cur; vn++ {
			want := o.at(vn)
			got := map[int64]int64{}
			anyExpired := false
			vt.Storage().Scan(func(_ storage.RID, tu catalog.Tuple) bool {
				base, visible, err := e.ReadAsOf(tu, vn)
				if errors.Is(err, ErrSessionExpired) {
					anyExpired = true
					return true
				}
				if err != nil {
					t.Logf("seed %d: ReadAsOf: %v", seed, err)
					anyExpired = true
					return false
				}
				if visible {
					got[base[0].Int()] = base[1].Int()
				}
				return true
			})
			reconstructible := vn >= cur-VN(n-1)
			if reconstructible {
				if anyExpired {
					t.Logf("seed %d n=%d: version %d (cur %d) reported expired", seed, n, vn, cur)
					return false
				}
				if len(got) != len(want) {
					t.Logf("seed %d n=%d: version %d: %d tuples, want %d", seed, n, vn, len(got), len(want))
					return false
				}
				for k, v := range want {
					if got[k] != v {
						t.Logf("seed %d n=%d: version %d key %d: %d want %d", seed, n, vn, k, got[k], v)
						return false
					}
				}
			}
			// For non-reconstructible versions the per-tuple detector may
			// or may not fire (only tuples modified too often trigger it);
			// no assertion beyond not crashing.
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
