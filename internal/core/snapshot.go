package core

import (
	"sync"
	"sync/atomic"
)

// globalSnapshot is an immutable copy of the latched global variables
// (currentVN, maintenanceActive, expireFloor), published behind an atomic
// pointer so the reader hot path — Session.Check and the per-query
// expiration tests — never takes the §3 latch. The latch remains the single
// point of serialization for writers: every snapshot is allocated and
// stored by publishLocked while mu is held, so two publishers can never
// race, and a loaded snapshot is internally consistent because it is never
// mutated after publication.
//
// This is the read-path structure of Larson et al. ("High-Performance
// Concurrency Control Mechanisms for Main-Memory Databases"): global
// version state is read with a single atomic load, and readers scale with
// cores instead of serializing on the writer's latch.
type globalSnapshot struct {
	currentVN   VN
	maintActive bool
	expireFloor VN
}

// publishLocked swaps in a fresh snapshot of the guarded global variables.
// Callers hold mu (the §3 latch); readers observe the swap with an atomic
// load and never block.
func (s *Store) publishLocked() {
	s.snap.Store(&globalSnapshot{
		currentVN:   s.currentVN,
		maintActive: s.maintActive,
		expireFloor: s.expireFloor,
	})
}

// readGlobals returns (currentVN, maintenanceActive, expireFloor) without
// taking the latch. In relation-backed mode the version pair is read from
// the Version relation through the engine — paying the buffer-pool traffic
// the §4 experiments measure — while the expiration floor still comes from
// the snapshot (the paper's deployment keeps only the two §3 globals in the
// relation).
func (s *Store) readGlobals() (VN, bool, VN) {
	snap := s.snap.Load()
	if s.versionTbl != nil {
		vn, active := s.scanVersionRelation()
		return vn, active, snap.expireFloor
	}
	return snap.currentVN, snap.maintActive, snap.expireFloor
}

// tableRegistry is the copy-on-write map of versioned relations, keyed by
// lower-cased base name. Mutators copy the map under mu and publish the
// copy; lookup is a single atomic load.
type tableRegistry map[string]*VTable

// sessionShards stripes the session registry so concurrent BeginSession and
// Close calls rarely contend with each other (and never with Check, which
// takes no lock at all).
const sessionShards = 16

// sessionShard is one stripe of the registry. Its mutex is a private
// fine-grained lock, not the §3 latch: it guards only the shard's set and
// is never held across any other operation.
type sessionShard struct {
	mu  sync.Mutex
	set map[*Session]struct{}
}

// sessionRegistry tracks live reader sessions. The garbage collector and
// the commit-when-quiet policy read it for the minimum sessionVN; the
// gauge-facing count is a plain atomic.
type sessionRegistry struct {
	shards [sessionShards]sessionShard
	next   atomic.Uint64
	live   atomic.Int64
}

func (r *sessionRegistry) add(sess *Session) {
	sh := &r.shards[sess.shard]
	sh.mu.Lock()
	if sh.set == nil {
		sh.set = make(map[*Session]struct{})
	}
	sh.set[sess] = struct{}{}
	sh.mu.Unlock()
	r.live.Add(1)
}

func (r *sessionRegistry) remove(sess *Session) {
	sh := &r.shards[sess.shard]
	sh.mu.Lock()
	_, present := sh.set[sess]
	delete(sh.set, sess)
	sh.mu.Unlock()
	if present {
		r.live.Add(-1)
	}
}

// floor returns the smallest sessionVN among live sessions and whether any
// session is live.
func (r *sessionRegistry) floor() (VN, bool) {
	var minVN VN
	any := false
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		for sess := range sh.set {
			if !any || sess.vn < minVN {
				minVN = sess.vn
				any = true
			}
		}
		sh.mu.Unlock()
	}
	return minVN, any
}

func (r *sessionRegistry) count() int { return int(r.live.Load()) }
