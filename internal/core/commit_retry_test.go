package core

import (
	"testing"
	"time"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/vfs"
)

// TestCommitRetriesTransientInstallFailure: the version install fails once
// (the Version relation's tuple is missing), the store's retry policy
// repairs the world during the backoff — injected through the policy's
// Sleep hook, standing in for a transient I/O hiccup clearing — and the
// second attempt commits. The retry is observable on the injected
// registry, and the latch was released during the backoff.
func TestCommitRetriesTransientInstallFailure(t *testing.T) {
	reg := obs.NewRegistry()
	d := db.Open(db.Options{})

	var s *Store
	var stolen catalog.Tuple
	repair := func(time.Duration) {
		// Runs between attempts, with the latch released: restoring the
		// Version tuple must itself be able to touch the relation.
		if _, err := s.versionTbl.Insert(stolen); err != nil {
			t.Errorf("repairing the Version relation: %v", err)
		}
	}
	var err error
	s, err = Open(d, Options{
		VersionRelation: true,
		Metrics:         reg,
		CommitRetry:     vfs.RetryPolicy{Attempts: 3, Sleep: repair},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}

	// Break the install's backing: steal the single Version tuple. The
	// first setGlobalsLocked attempt fails to find it.
	var rid storage.RID
	s.versionTbl.Scan(func(r storage.RID, tu catalog.Tuple) bool {
		rid, stolen = r, tu.Clone()
		return false
	})
	stolen[1] = catalog.NewBool(true) // still active: the repair happens mid-commit
	if err := s.versionTbl.Delete(rid); err != nil {
		t.Fatal(err)
	}

	if err := m.Commit(); err != nil {
		t.Fatalf("Commit did not survive a transient install failure: %v", err)
	}
	if got := reg.CounterValue("core_commit_retries_total"); got != 1 {
		t.Errorf("core_commit_retries_total = %d, want 1", got)
	}
	if got := s.CurrentVN(); got != 2 {
		t.Errorf("currentVN = %d after retried commit, want 2", got)
	}
	if s.MaintenanceActive() {
		t.Error("maintenanceActive still set after retried commit")
	}
	// The store is not wedged: a follow-up transaction commits cleanly.
	m2 := mustMaint(t, s)
	if err := m2.Insert("kv", kvTuple(2, 20)); err != nil {
		t.Fatal(err)
	}
	if err := m2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := reg.CounterValue("core_commit_retries_total"); got != 1 {
		t.Errorf("clean commit bumped core_commit_retries_total to %d", got)
	}
}

// TestCommitRetryExhaustionLeavesTxnActive: with NoRetry and a persistent
// failure, Commit surfaces the error, installs nothing, and leaves the
// transaction active for the caller to repair and retry — the pre-retry
// contract, now explicit.
func TestCommitRetryExhaustionLeavesTxnActive(t *testing.T) {
	reg := obs.NewRegistry()
	d := db.Open(db.Options{})
	s, err := Open(d, Options{
		VersionRelation: true,
		Metrics:         reg,
		CommitRetry:     vfs.NoRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	var rid storage.RID
	var stolen catalog.Tuple
	s.versionTbl.Scan(func(r storage.RID, tu catalog.Tuple) bool {
		rid, stolen = r, tu.Clone()
		return false
	})
	if err := s.versionTbl.Delete(rid); err != nil {
		t.Fatal(err)
	}

	if err := m.Commit(); err == nil {
		t.Fatal("Commit with NoRetry succeeded against a broken Version relation")
	}
	if got := reg.CounterValue("core_commit_retries_total"); got != 0 {
		t.Errorf("NoRetry still recorded %d retries", got)
	}
	// Repair the relation (it is the authority for the globals, so it must
	// be whole before reading CurrentVN), then confirm nothing installed.
	stolen[1] = catalog.NewBool(true)
	if _, err := s.versionTbl.Insert(stolen); err != nil {
		t.Fatal(err)
	}
	if got := s.CurrentVN(); got != 1 {
		t.Errorf("failed commit moved currentVN to %d", got)
	}
	if err := m.Commit(); err != nil {
		t.Fatalf("retried Commit after repair: %v", err)
	}
	if got := s.CurrentVN(); got != 2 {
		t.Errorf("currentVN = %d after repaired commit, want 2", got)
	}
}
