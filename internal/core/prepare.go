package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/exec"
	"repro/internal/sql"
)

// Prepared is a SELECT that has been parsed once and whose §4.1 rewrite is
// cached: executing it through Session.QueryPrepared skips both the parse
// and — on the steady-state path — the rewrite derivation that Session.Query
// performs per call.
//
// The rewrite depends only on the set of registered versioned relations and
// their schemas, never on the session's version (the rewrite binds
// :sessionVN as a parameter at execution time), so one rewritten form is
// valid until the table registry changes. The cache is therefore keyed on
// the identity of the store's copy-on-write table registry: CreateTable and
// AdoptTable publish a fresh registry, which invalidates every cached plan
// with a single pointer comparison and no shootdown protocol. A Prepared is
// safe for concurrent use by any number of sessions.
type Prepared struct {
	store *Store
	src   *sql.SelectStmt
	plan  atomic.Pointer[preparedPlan]
}

// preparedPlan is one immutable cached rewrite — and its compiled form —
// valid for exactly the table registry it was derived against.
type preparedPlan struct {
	reg  *tableRegistry
	rw   *sql.SelectStmt
	plan *exec.Plan
}

// Prepare parses a SELECT and returns its prepared form.
func (s *Store) Prepare(text string) (*Prepared, error) {
	sel, err := sql.ParseSelect(text)
	if err != nil {
		return nil, err
	}
	return s.PrepareStmt(sel), nil
}

// PrepareStmt prepares an already-parsed SELECT. The input is cloned, so
// later mutations by the caller do not affect the prepared statement.
func (s *Store) PrepareStmt(sel *sql.SelectStmt) *Prepared {
	return &Prepared{store: s, src: sql.CloneSelect(sel)}
}

// SQL returns the canonical printed form of the prepared statement — the
// normalization key callers use to deduplicate preparations.
func (p *Prepared) SQL() string { return sql.Print(p.src) }

// compiled returns the cached rewrite-plus-plan when the table registry is
// unchanged, deriving and caching a fresh one otherwise. Concurrent misses
// may race to derive; each derivation is correct for the registry it loaded,
// and the losing Store is harmless (last writer wins, both plans valid for
// their registries).
func (p *Prepared) compiled() (*preparedPlan, error) {
	reg := p.store.tables.Load()
	if pl := p.plan.Load(); pl != nil && pl.reg == reg {
		p.store.metrics.preparedHits.Inc()
		return pl, nil
	}
	rw, err := RewriteSelect(p.store, p.src)
	if err != nil {
		return nil, err
	}
	plan, err := exec.CompileSelect(queryCatalog{p.store}, rw, p.store.fastOptions(p.src))
	if err != nil {
		return nil, err
	}
	p.store.metrics.preparedMisses.Inc()
	pl := &preparedPlan{reg: reg, rw: rw, plan: plan}
	p.plan.Store(pl)
	return pl, nil
}

// rewritten returns the §4.1 rewritten form, from cache when valid.
func (p *Prepared) rewritten() (*sql.SelectStmt, error) {
	pl, err := p.compiled()
	if err != nil {
		return nil, err
	}
	return pl.rw, nil
}

// QueryPrepared executes a prepared SELECT at the session's version,
// following the same expiration discipline as QueryStmt (global pessimistic
// check before and after, or the per-tuple probe for optimistic sessions).
// On a cache hit the steady-state path performs no parsing, no rewrite, and
// no mutex acquisition.
func (sess *Session) QueryPrepared(p *Prepared, params exec.Params) (*exec.Rows, error) {
	if p.store != sess.store {
		return nil, fmt.Errorf("core: prepared statement belongs to a different store")
	}
	if sess.perTuple {
		return sess.queryPreparedPerTuple(p, params)
	}
	if err := sess.Check(); err != nil {
		return nil, err
	}
	pl, err := p.compiled()
	if err != nil {
		return nil, err
	}
	rows, err := sess.executePrepared(pl, withSessionVN(params, sess.vn))
	if err != nil {
		return nil, err
	}
	if sess.midQueryHook != nil {
		sess.midQueryHook()
	}
	if err := sess.Check(); err != nil {
		return nil, err
	}
	return rows, nil
}

// executePrepared runs a prepared plan, falling back to the tree-walking
// executor over the cached rewrite if the table registry flipped between
// cache validation and execution (the same stale-plan recovery as the
// ad-hoc path; the tree-walker resolves tables at execution time, which is
// exactly what the pre-compilation code did).
func (sess *Session) executePrepared(pl *preparedPlan, params exec.Params) (*exec.Rows, error) {
	rows, err := pl.plan.Execute(queryCatalog{sess.store}, params)
	if err != nil && errors.Is(err, exec.ErrPlanStale) {
		return exec.Select(queryCatalog{sess.store}, pl.rw, params)
	}
	return rows, err
}

// queryPreparedPerTuple is QueryPrepared under §3.2's optimistic expiration
// alternative, mirroring queryPerTuple: execute, then probe each versioned
// table in FROM for tuples the session can no longer reconstruct.
func (sess *Session) queryPreparedPerTuple(p *Prepared, params exec.Params) (*exec.Rows, error) {
	if sess.closed.Load() {
		return nil, ErrSessionClosed
	}
	_, _, floor := sess.store.readGlobals()
	if sess.vn < floor {
		return nil, sess.markExpired()
	}
	pl, err := p.compiled()
	if err != nil {
		return nil, err
	}
	rows, err := sess.executePrepared(pl, withSessionVN(params, sess.vn))
	if err != nil {
		return nil, err
	}
	if sess.midQueryHook != nil {
		sess.midQueryHook()
	}
	for _, tr := range p.src.From {
		vt := sess.store.lookup(tr.Table)
		if vt == nil {
			continue
		}
		if vt.hasUnreconstructible(sess.vn) {
			return nil, sess.markExpired()
		}
	}
	return rows, nil
}
