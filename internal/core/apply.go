package core

import (
	"errors"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/storage"
)

// applier is one goroutine's sink for the Tables 2–4 physical rewrite: it
// owns the per-goroutine transaction state — operation counters, undo
// records, deferred watermark recomputes — while sharing the Maintenance
// identity (VN, rollback mode, net-effect switch). The sequential write
// path runs on the transaction's root applier; ApplyBatch gives each
// worker pool goroutine a private applier and merges them after the join,
// so an applier is never shared between goroutines.
type applier struct {
	m *Maintenance
	// par marks a parallel-batch worker. Parallel appliers journal
	// physical deletes *before* freeing the heap slot (a concurrent
	// worker's insert may reuse the RID, and recovery replays records in
	// log order, so the delete record must precede the reusing insert's)
	// and defer oldest-slot watermark recomputes to the post-join merge
	// (recomputeOldestHW's scan-and-store is only safe single-writer).
	par bool
	// j is the journal captured once at batch start for parallel workers,
	// so the pool does not hammer the store latch once per operation. The
	// sequential root resolves the store's journal per operation, keeping
	// the seed behavior that a journal installed mid-transaction takes
	// effect immediately.
	j     Journal
	stats MaintStats
	undo  []undoRec
	// hwDeferred collects tables whose oldestHW needs a recompute after
	// the worker join (parallel physical deletes only).
	hwDeferred map[*VTable]struct{}
}

// met returns the store's metrics (never nil).
func (a *applier) met() *storeMetrics { return a.m.store.metrics }

func (a *applier) journal() Journal {
	if a.par {
		return a.j
	}
	return a.m.store.journalOrNil()
}

// snapshot records a tuple's pre-touch state for rollback, once per tuple.
func (a *applier) snapshot(vt *VTable, rid storage.RID, ext catalog.Tuple, inserted bool) {
	if a.m.mode != RollbackUndoLog && !inserted {
		return
	}
	// Physical inserts must be undone in both modes (logless rollback can
	// also see op=insert in the tuple and delete it, but recording keeps
	// the undo path uniform and handles keyless tables).
	for _, u := range a.undo {
		if u.vt == vt && u.rid == rid {
			return
		}
	}
	rec := undoRec{vt: vt, rid: rid, inserted: inserted}
	if !inserted {
		rec.image = ext.Clone()
	}
	a.undo = append(a.undo, rec)
}

// dropUndo removes the undo record for a tuple this transaction inserted
// and then physically deleted (insert + delete nets to nothing). Same-key
// operations always land on the same applier, so the record to drop is
// always in a.undo.
func (a *applier) dropUndo(vt *VTable, rid storage.RID) {
	for i, u := range a.undo {
		if u.vt == vt && u.rid == rid && u.inserted {
			a.undo = append(a.undo[:i], a.undo[i+1:]...)
			return
		}
	}
}

// noteTupleLowered maintains the oldest-slot watermark after a rewrite
// that lowered a tuple's slots (the Table 4 row-2 pop cell): sequentially
// it recomputes at once if the pre-image may have carried the mark;
// parallel workers defer to the post-join merge, where recomputeOldestHW's
// scan-and-store is single-writer again.
func (a *applier) noteTupleLowered(vt *VTable, before catalog.Tuple) {
	if a.par {
		a.hwDeferred[vt] = struct{}{}
		return
	}
	vt.noteTupleRemoved(before)
}

// physInsert performs and journals a physical tuple insert.
func (a *applier) physInsert(vt *VTable, ext catalog.Tuple) (storage.RID, error) {
	rid, err := vt.tbl.Insert(ext)
	if err != nil {
		return rid, err
	}
	if j := a.journal(); j != nil {
		j.LogInsert(vt.ext.Base.Name, rid, ext)
	}
	vt.noteTupleWrite(ext)
	a.stats.PhysicalInserts++
	a.met().physIns.Inc()
	return rid, nil
}

// physUpdate performs and journals an in-place physical update.
func (a *applier) physUpdate(vt *VTable, rid storage.RID, before, after catalog.Tuple) error {
	if err := vt.tbl.Update(rid, after); err != nil {
		return err
	}
	if j := a.journal(); j != nil {
		j.LogUpdate(vt.ext.Base.Name, rid, before, after)
	}
	vt.noteTupleWrite(after)
	a.stats.PhysicalUpdates++
	a.met().physUpd.Inc()
	return nil
}

// physDelete performs and journals a physical delete.
//
// The parallel path journals before freeing the slot: once the heap slot
// is free, a concurrent worker's insert may reuse the RID and append its
// insert record, and recovery's (table, RID) remap requires the delete
// record of the old tuple to precede the insert record of the new one. If
// the physical delete then fails, the journal carries a record for an
// operation that never happened — ApplyBatch poisons the transaction on
// any worker error, forcing a Rollback whose abort record makes recovery
// skip the transaction wholesale.
func (a *applier) physDelete(vt *VTable, rid storage.RID, before catalog.Tuple) error {
	if a.par {
		if j := a.journal(); j != nil {
			j.LogDelete(vt.ext.Base.Name, rid, before)
		}
		if err := vt.tbl.Delete(rid); err != nil {
			return err
		}
		a.hwDeferred[vt] = struct{}{}
	} else {
		if err := vt.tbl.Delete(rid); err != nil {
			return err
		}
		if j := a.journal(); j != nil {
			j.LogDelete(vt.ext.Base.Name, rid, before)
		}
		vt.noteTupleRemoved(before)
	}
	a.stats.PhysicalDeletes++
	a.met().physDel.Inc()
	return nil
}

// insert performs a logical insert of a base-schema tuple, implementing
// Table 2 (see Maintenance.Insert for the API contract).
func (a *applier) insert(vt *VTable, base catalog.Tuple) error {
	base, err := vt.ext.Base.Validate(base)
	if err != nil {
		return err
	}
	a.stats.LogicalInserts++
	a.met().logicalIns.Inc()
	e := vt.ext
	if e.Base.HasKey() {
		key := e.KeyOfBase(base)
		if rid, ok := vt.tbl.SearchKey(key); ok {
			ext, err := vt.tbl.Get(rid)
			if err == nil {
				return a.insertOnConflict(vt, rid, ext, base)
			}
		}
	}
	// Table 2, row 3: no conflicting tuple.
	ext := e.NewExtTuple(base, a.m.vn)
	rid, err := a.physInsert(vt, ext)
	if err != nil {
		if errors.Is(err, db.ErrDuplicateKey) {
			return fmt.Errorf("%w: insert of live key %v into %s", ErrInvalidMaintenanceOp, e.KeyOfBase(base), e.Base.Name)
		}
		return err
	}
	a.snapshot(vt, rid, nil, true)
	a.met().cellT2R3.Inc()
	return nil
}

// insertOnConflict handles Table 2 rows one and two: the key exists
// physically. Valid only when the existing tuple is logically deleted.
func (a *applier) insertOnConflict(vt *VTable, rid storage.RID, ext catalog.Tuple, base catalog.Tuple) error {
	e := vt.ext
	prevOp := e.OpAt(ext, 1)
	tvn := e.TupleVN(ext, 1)
	if prevOp != OpDelete {
		return fmt.Errorf("%w: insert of live key %v into %s (previous operation %s)",
			ErrInvalidMaintenanceOp, e.KeyOfBase(base), e.Base.Name, prevOp)
	}
	a.snapshot(vt, rid, ext, false)
	t := ext.Clone()
	if tvn < a.m.vn {
		// Row 1: tuple deleted by an earlier transaction. Push the delete
		// back a slot (nVNL), record this slot as an insert with NULL
		// pre-update attributes, and install the new values.
		e.PushBack(t)
		e.SetSlot(t, 1, a.m.vn, OpInsert)
		e.SetPreValues(t, 1, e.NullPre())
		e.SetBaseValues(t, base)
	} else {
		// Row 2: deleted by this same transaction. Net effect of delete
		// then insert is an update (§3.3); the pre-update attributes
		// already hold the pre-transaction values.
		e.SetBaseValues(t, base)
		op := OpUpdate
		if !a.m.netEffect {
			op = OpInsert // ablation: record the raw operation
		}
		e.SetSlot(t, 1, a.m.vn, op)
		a.stats.NetEffectFolds++
		a.met().netFolds.Inc()
	}
	if err := a.physUpdate(vt, rid, ext, t); err != nil {
		return err
	}
	if tvn < a.m.vn {
		a.met().cellT2R1.Inc()
	} else {
		a.met().cellT2R2.Inc()
	}
	return nil
}

// applyUpdate folds a logical update of one tuple (Table 3). newBase must
// differ from the current values only in updatable attributes.
func (a *applier) applyUpdate(vt *VTable, rid storage.RID, ext catalog.Tuple, newBase catalog.Tuple) error {
	e := vt.ext
	if e.OpAt(ext, 1) == OpDelete {
		return fmt.Errorf("%w: update of logically-deleted tuple in %s", ErrInvalidMaintenanceOp, e.Base.Name)
	}
	newBase, err := e.Base.Validate(newBase)
	if err != nil {
		return err
	}
	cur := e.BaseValues(ext)
	for i := range cur {
		if _, upd := e.IsUpdatable(i); !upd && !catalog.Equal(cur[i], newBase[i]) {
			return fmt.Errorf("core: update changes non-updatable column %q of %s",
				e.Base.Columns[i].Name, e.Base.Name)
		}
	}
	a.stats.LogicalUpdates++
	a.met().logicalUpd.Inc()
	a.snapshot(vt, rid, ext, false)
	t := ext.Clone()
	if e.TupleVN(ext, 1) < a.m.vn {
		// Row 1: first touch by this transaction — preserve the current
		// values as the new slot-1 pre-update version.
		e.PushBack(t)
		e.SetPreValues(t, 1, e.CurrentUpd(t))
		e.SetSlot(t, 1, a.m.vn, OpUpdate)
		e.SetBaseValues(t, newBase)
	} else {
		// Row 2: already modified by this transaction — overwrite the
		// current values only; the recorded operation keeps its net
		// effect (insert stays insert).
		e.SetBaseValues(t, newBase)
		if !a.m.netEffect {
			e.SetSlot(t, 1, a.m.vn, OpUpdate) // ablation: clobber the net effect
		}
		a.stats.NetEffectFolds++
		a.met().netFolds.Inc()
	}
	if err := a.physUpdate(vt, rid, ext, t); err != nil {
		return err
	}
	if e.TupleVN(ext, 1) < a.m.vn {
		a.met().cellT3R1.Inc()
	} else {
		a.met().cellT3R2.Inc()
	}
	return nil
}

// applyDelete folds a logical delete of one tuple (Table 4).
func (a *applier) applyDelete(vt *VTable, rid storage.RID, ext catalog.Tuple) error {
	e := vt.ext
	if e.OpAt(ext, 1) == OpDelete {
		return fmt.Errorf("%w: delete of logically-deleted tuple in %s", ErrInvalidMaintenanceOp, e.Base.Name)
	}
	a.stats.LogicalDeletes++
	a.met().logicalDel.Inc()
	if e.TupleVN(ext, 1) < a.m.vn {
		// Row 1: preserve the current values as the pre-update version and
		// mark the tuple logically deleted. The physical operation is an
		// update — the tuple stays for readers (§3.3).
		a.snapshot(vt, rid, ext, false)
		t := ext.Clone()
		e.PushBack(t)
		e.SetPreValues(t, 1, e.CurrentUpd(t))
		e.SetSlot(t, 1, a.m.vn, OpDelete)
		if err := a.physUpdate(vt, rid, ext, t); err != nil {
			return err
		}
		a.met().cellT4R1.Inc()
		return nil
	}
	// Row 2: modified earlier by this same transaction. The net effect
	// depends on which operation this transaction already recorded — the
	// switch mirrors Table 4's row-2 cells and is checked for coverage by
	// vnlvet's tableexhaustive analyzer.
	switch e.OpAt(ext, 1) {
	case OpInsert:
		if e.L.N > 2 && e.TupleVN(ext, 2) > 0 {
			// The "insert" was a re-insert over an earlier delete (Table 2
			// row 1) that pushed older history back. Insert+delete nets to
			// nothing, so pop the slots to restore that history instead of
			// physically deleting — nVNL readers may still need it. (The
			// restored slot-1 operation is necessarily the earlier delete,
			// so the stale current values are never read.)
			a.snapshot(vt, rid, ext, false)
			t := ext.Clone()
			e.PopFront(t)
			if err := a.physUpdate(vt, rid, ext, t); err != nil {
				return err
			}
			// Popping lowered this tuple's oldest slot; if it carried the
			// high-water mark, the mark is now stale-high and would falsely
			// expire sessions. (physUpdate's noteTupleWrite only raises.)
			a.noteTupleLowered(vt, ext)
			a.stats.NetEffectFolds++
			a.met().netFolds.Inc()
			a.met().cellT4R2InsPop.Inc()
			return nil
		}
		// A fresh physical insert (or 2VNL, where no concurrent session
		// can see a version older than the pre-insert delete): insert then
		// delete nets to nothing — physically delete.
		if err := a.physDelete(vt, rid, ext); err != nil {
			return err
		}
		a.stats.NetEffectFolds++
		a.met().netFolds.Inc()
		a.met().cellT4R2InsDelete.Inc()
		a.dropUndo(vt, rid)
		return nil
	case OpUpdate:
		// Previously updated by this transaction: net effect is delete.
		a.snapshot(vt, rid, ext, false)
		t := ext.Clone()
		e.SetSlot(t, 1, a.m.vn, OpDelete)
		if err := a.physUpdate(vt, rid, ext, t); err != nil {
			return err
		}
		a.stats.NetEffectFolds++
		a.met().netFolds.Inc()
		a.met().cellT4R2Update.Inc()
		return nil
	default:
		// OpDelete is rejected on entry and OpNone never carries
		// tupleVN == maintenanceVN; reaching here is a bookkeeping bug.
		return fmt.Errorf("%w: delete of %s tuple with unexpected slot-1 operation %s",
			ErrInvalidMaintenanceOp, e.Base.Name, e.OpAt(ext, 1))
	}
}
