package core

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/storage"
)

// dailySalesSchema is the paper's running example (Example 2.1, Figure 3):
// the group-by attributes are the unique key and only total_sales is
// updatable. Column lengths follow Figure 3 exactly.
func dailySalesSchema() *catalog.Schema {
	return catalog.MustSchema("DailySales", []catalog.Column{
		{Name: "city", Type: catalog.TypeString, Length: 20},
		{Name: "state", Type: catalog.TypeString, Length: 2},
		{Name: "product_line", Type: catalog.TypeString, Length: 12},
		{Name: "date", Type: catalog.TypeDate, Length: 4},
		{Name: "total_sales", Type: catalog.TypeInt, Length: 4, Updatable: true},
	}, "city", "state", "product_line", "date")
}

func date(t *testing.T, s string) catalog.Value {
	t.Helper()
	v, err := catalog.ParseDate(s)
	if err != nil {
		t.Fatalf("date %q: %v", s, err)
	}
	return v
}

func salesTuple(t *testing.T, city, pl, dt string, total int64) catalog.Tuple {
	t.Helper()
	return catalog.Tuple{
		catalog.NewString(city), catalog.NewString("CA"), catalog.NewString(pl),
		date(t, dt), catalog.NewInt(total),
	}
}

// newStore opens a fresh database + version store with n versions.
func newStore(t *testing.T, n int, opts ...func(*Options)) *Store {
	t.Helper()
	d := db.Open(db.Options{})
	o := Options{N: n}
	for _, f := range opts {
		f(&o)
	}
	s, err := Open(d, o)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func mustMaint(t *testing.T, s *Store) *Maintenance {
	t.Helper()
	m, err := s.BeginMaintenance()
	if err != nil {
		t.Fatalf("BeginMaintenance: %v", err)
	}
	return m
}

func commit(t *testing.T, m *Maintenance) {
	t.Helper()
	if err := m.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// setupFigure4 drives maintenance transactions so the DailySales relation
// reaches exactly the state of Figure 4:
//
//	tupleVN op     city     product_line date     total pre
//	3       insert San Jose golf equip   10/14/96 10000 null
//	4       insert San Jose golf equip   10/15/96  1500 null
//	4       update Berkeley racquetball  10/14/96 12000 10000
//	4       delete Novato   rollerblades 10/13/96  8000 8000
//
// It returns the store with currentVN = 4 and, when grabSession3 is set, a
// session begun at VN 3 (between transactions 3 and 4).
func setupFigure4(t *testing.T, s *Store) *Session {
	t.Helper()
	if _, err := s.CreateTable(dailySalesSchema()); err != nil {
		t.Fatalf("CreateTable: %v", err)
	}
	// Transaction VN=2: load the older tuples.
	m := mustMaint(t, s)
	if m.VN() != 2 {
		t.Fatalf("first maintenanceVN = %d, want 2", m.VN())
	}
	if err := m.Insert("DailySales", salesTuple(t, "Berkeley", "racquetball", "10/14/96", 10000)); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("DailySales", salesTuple(t, "Novato", "rollerblades", "10/13/96", 8000)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	// Transaction VN=3: the San Jose 10/14 insert of Figure 4 row 1.
	m = mustMaint(t, s)
	if err := m.Insert("DailySales", salesTuple(t, "San Jose", "golf equip", "10/14/96", 10000)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	sess := s.BeginSession()
	if sess.VN() != 3 {
		t.Fatalf("sessionVN = %d, want 3", sess.VN())
	}
	// Transaction VN=4: rows 2–4 of Figure 4.
	m = mustMaint(t, s)
	if err := m.Insert("DailySales", salesTuple(t, "San Jose", "golf equip", "10/15/96", 1500)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.UpdateKey("DailySales",
		catalog.Tuple{catalog.NewString("Berkeley"), catalog.NewString("CA"), catalog.NewString("racquetball"), date(t, "10/14/96")},
		func(cur catalog.Tuple) catalog.Tuple {
			cur[4] = catalog.NewInt(12000)
			return cur
		}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteKey("DailySales",
		catalog.Tuple{catalog.NewString("Novato"), catalog.NewString("CA"), catalog.NewString("rollerblades"), date(t, "10/13/96")}); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	if got := s.CurrentVN(); got != 4 {
		t.Fatalf("currentVN = %d, want 4", got)
	}
	return sess
}

// extRow is a flattened view of one extended DailySales tuple for
// comparison against the paper's figures.
type extRow struct {
	tvn   int64
	op    string
	city  string
	pl    string
	date  string
	total int64
	pre   string // "null" or the number
}

func snapshotExt(t *testing.T, s *Store) map[string]extRow {
	t.Helper()
	vt, err := s.Table("DailySales")
	if err != nil {
		t.Fatal(err)
	}
	e := vt.Ext()
	out := make(map[string]extRow)
	vt.Storage().Scan(func(_ storage.RID, tu catalog.Tuple) bool {
		base := e.BaseValues(tu)
		r := extRow{
			tvn:   int64(e.TupleVN(tu, 1)),
			op:    string(e.OpAt(tu, 1)),
			city:  base[0].Str(),
			pl:    base[2].Str(),
			date:  base[3].String(),
			total: base[4].Int(),
			pre:   e.PreValues(tu, 1)[0].String(),
		}
		out[r.city+"/"+r.pl+"/"+r.date] = r
		return true
	})
	return out
}

// TestFigure4State verifies the physical extended relation matches Figure 4
// cell by cell.
func TestFigure4State(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s)
	got := snapshotExt(t, s)
	want := map[string]extRow{
		"San Jose/golf equip/10/14/96":  {3, "insert", "San Jose", "golf equip", "10/14/96", 10000, "null"},
		"San Jose/golf equip/10/15/96":  {4, "insert", "San Jose", "golf equip", "10/15/96", 1500, "null"},
		"Berkeley/racquetball/10/14/96": {4, "update", "Berkeley", "racquetball", "10/14/96", 12000, "10000"},
		"Novato/rollerblades/10/13/96":  {4, "delete", "Novato", "rollerblades", "10/13/96", 8000, "8000"},
	}
	if len(got) != len(want) {
		t.Fatalf("relation has %d tuples, want %d: %+v", len(got), len(want), got)
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s:\n got %+v\nwant %+v", k, got[k], w)
		}
	}
}

// TestExample32ReaderView verifies a reader with sessionVN = 3 sees exactly
// the three logical tuples of Example 3.2.
func TestExample32ReaderView(t *testing.T) {
	s := newStore(t, 2)
	sess := setupFigure4(t, s)
	defer sess.Close()

	var seen []string
	err := sess.Scan("DailySales", func(base catalog.Tuple) bool {
		seen = append(seen, base[0].Str()+"|"+base[2].Str()+"|"+base[4].String())
		return true
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	want := map[string]bool{
		"San Jose|golf equip|10000":  true,
		"Berkeley|racquetball|10000": true, // pre-update value, not 12000
		"Novato|rollerblades|8000":   true, // pre-delete value: still visible at VN 3
	}
	if len(seen) != 3 {
		t.Fatalf("reader saw %d tuples, want 3: %v", len(seen), seen)
	}
	for _, row := range seen {
		if !want[row] {
			t.Errorf("unexpected row %q", row)
		}
	}

	// The same view through the SQL rewrite path.
	rows, err := sess.Query(`SELECT city, product_line, total_sales FROM DailySales`, nil)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if rows.Len() != 3 {
		t.Fatalf("SQL reader saw %d rows:\n%s", rows.Len(), rows)
	}
	for _, tu := range rows.Tuples {
		key := tu[0].Str() + "|" + tu[1].Str() + "|" + tu[2].String()
		if !want[key] {
			t.Errorf("SQL row %q not in Example 3.2's expected view", key)
		}
	}

	// A fresh session at VN 4 sees the current state instead.
	s4 := s.BeginSession()
	defer s4.Close()
	rows, err = s4.Query(`SELECT SUM(total_sales) FROM DailySales`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := rows.Tuples[0][0].Int(); got != 10000+1500+12000 {
		t.Errorf("VN-4 total = %d, want 23500 (Novato deleted, Berkeley updated)", got)
	}
}

// TestFigure6MaintenanceResult applies the Figure 5 maintenance transaction
// (VN = 5) to the Figure 4 state and verifies the physical result matches
// Figure 6 cell by cell — including the net-effect and key-conflict
// handling of Tables 2–4.
func TestFigure6MaintenanceResult(t *testing.T) {
	s := newStore(t, 2)
	sess := setupFigure4(t, s)
	defer sess.Close()

	m := mustMaint(t, s)
	if m.VN() != 5 {
		t.Fatalf("maintenanceVN = %d, want 5", m.VN())
	}
	// Figure 5, op 1: insert San Jose golf equip 10/16/96, 11000.
	if err := m.Insert("DailySales", salesTuple(t, "San Jose", "golf equip", "10/16/96", 11000)); err != nil {
		t.Fatal(err)
	}
	// Figure 5, op 2: insert Novato rollerblades 10/13/96, 6000 — a key
	// conflict with the logically-deleted Novato tuple (Table 2, row 1).
	if err := m.Insert("DailySales", salesTuple(t, "Novato", "rollerblades", "10/13/96", 6000)); err != nil {
		t.Fatal(err)
	}
	// Figure 5, op 3: update San Jose golf equip 10/14/96 to 10200.
	if _, err := m.UpdateKey("DailySales",
		catalog.Tuple{catalog.NewString("San Jose"), catalog.NewString("CA"), catalog.NewString("golf equip"), date(t, "10/14/96")},
		func(cur catalog.Tuple) catalog.Tuple {
			cur[4] = catalog.NewInt(10200)
			return cur
		}); err != nil {
		t.Fatal(err)
	}
	// Figure 5, op 4: delete Berkeley racquetball 10/14/96.
	if _, err := m.DeleteKey("DailySales",
		catalog.Tuple{catalog.NewString("Berkeley"), catalog.NewString("CA"), catalog.NewString("racquetball"), date(t, "10/14/96")}); err != nil {
		t.Fatal(err)
	}
	commit(t, m)

	got := snapshotExt(t, s)
	want := map[string]extRow{
		"San Jose/golf equip/10/14/96":  {5, "update", "San Jose", "golf equip", "10/14/96", 10200, "10000"},
		"San Jose/golf equip/10/15/96":  {4, "insert", "San Jose", "golf equip", "10/15/96", 1500, "null"},
		"Berkeley/racquetball/10/14/96": {5, "delete", "Berkeley", "racquetball", "10/14/96", 12000, "12000"},
		"Novato/rollerblades/10/13/96":  {5, "insert", "Novato", "rollerblades", "10/13/96", 6000, "null"},
		"San Jose/golf equip/10/16/96":  {5, "insert", "San Jose", "golf equip", "10/16/96", 11000, "null"},
	}
	if len(got) != len(want) {
		t.Fatalf("relation has %d tuples, want %d", len(got), len(want))
	}
	for k, w := range want {
		if got[k] != w {
			t.Errorf("%s:\n got %+v\nwant %+v (Figure 6)", k, got[k], w)
		}
	}

	// A session begun at VN 4 during transaction 5 keeps reading version 4
	// throughout (it already exists: the Figure-4 reader at VN 3 is now
	// expired since transaction 5 began after transaction 4 committed).
	if err := sess.Check(); err == nil {
		t.Error("VN-3 session should have expired when transaction 5 began... " +
			"(it overlapped two maintenance transactions)")
	}
}

// TestExample51NVNL reproduces Figure 7 / Example 5.1: a 4VNL tuple after
// insert(VN 3), update(VN 5), delete(VN 6), and the per-session visibility
// the paper walks through.
func TestExample51NVNL(t *testing.T) {
	s := newStore(t, 4)
	if _, err := s.CreateTable(dailySalesSchema()); err != nil {
		t.Fatal(err)
	}
	key := catalog.Tuple{catalog.NewString("San Jose"), catalog.NewString("CA"), catalog.NewString("golf equip"), date(t, "10/14/96")}

	runTxn := func(fn func(m *Maintenance)) {
		m := mustMaint(t, s)
		if fn != nil {
			fn(m)
		}
		commit(t, m)
	}
	runTxn(nil)                   // VN 2: empty
	runTxn(func(m *Maintenance) { // VN 3: insert 10000
		if err := m.Insert("DailySales", salesTuple(t, "San Jose", "golf equip", "10/14/96", 10000)); err != nil {
			t.Fatal(err)
		}
	})
	runTxn(nil)                   // VN 4: empty
	runTxn(func(m *Maintenance) { // VN 5: update to 10200
		if _, err := m.UpdateKey("DailySales", key, func(cur catalog.Tuple) catalog.Tuple {
			cur[4] = catalog.NewInt(10200)
			return cur
		}); err != nil {
			t.Fatal(err)
		}
	})
	runTxn(func(m *Maintenance) { // VN 6: delete
		if _, err := m.DeleteKey("DailySales", key); err != nil {
			t.Fatal(err)
		}
	})

	// Verify the physical tuple matches Figure 7.
	vt, _ := s.Table("DailySales")
	e := vt.Ext()
	var ext catalog.Tuple
	vt.Storage().Scan(func(_ storage.RID, tu catalog.Tuple) bool { ext = tu; return false })
	if ext == nil {
		t.Fatal("tuple vanished")
	}
	check := func(j int, tvn VN, op Op, pre string) {
		t.Helper()
		if e.TupleVN(ext, j) != tvn || e.OpAt(ext, j) != op {
			t.Errorf("slot %d = (%d, %s), want (%d, %s)", j, e.TupleVN(ext, j), e.OpAt(ext, j), tvn, op)
		}
		if got := e.PreValues(ext, j)[0].String(); got != pre {
			t.Errorf("pre%d_total_sales = %s, want %s", j, got, pre)
		}
	}
	if got := e.BaseValues(ext)[4].Int(); got != 10200 {
		t.Errorf("total_sales = %d, want 10200 (Figure 7)", got)
	}
	check(1, 6, OpDelete, "10200")
	check(2, 5, OpUpdate, "10000")
	check(3, 3, OpInsert, "null")

	// Per-session visibility, exactly as Example 5.1 narrates.
	cases := []struct {
		vn      VN
		visible bool
		total   int64
		expired bool
	}{
		{7, false, 0, false}, // >= 6: ignore (deleted)
		{6, false, 0, false},
		{5, true, 10200, false},
		{4, true, 10000, false},
		{3, true, 10000, false},
		{2, false, 0, false}, // pre-update of insert: ignore
		{1, false, 0, true},  // expired
	}
	for _, c := range cases {
		base, visible, err := e.ReadAsOf(ext, c.vn)
		if c.expired {
			if err != ErrSessionExpired {
				t.Errorf("s=%d: err = %v, want ErrSessionExpired", c.vn, err)
			}
			continue
		}
		if err != nil {
			t.Errorf("s=%d: %v", c.vn, err)
			continue
		}
		if visible != c.visible {
			t.Errorf("s=%d: visible = %v, want %v", c.vn, visible, c.visible)
			continue
		}
		if visible && base[4].Int() != c.total {
			t.Errorf("s=%d: total = %d, want %d", c.vn, base[4].Int(), c.total)
		}
	}
}

// TestExample41RewriteText verifies the reader rewrite produces the CASE
// expression and WHERE predicate of Example 4.1.
func TestExample41RewriteText(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s).Close()
	sess := s.BeginSession()
	defer sess.Close()
	got, err := sess.Rewrite(`SELECT city, state, SUM(total_sales) FROM DailySales GROUP BY city, state`)
	if err != nil {
		t.Fatal(err)
	}
	for _, fragment := range []string{
		"CASE WHEN (:sessionVN >= tupleVN) THEN total_sales ELSE pre_total_sales END",
		"(:sessionVN >= tupleVN) AND (operation <> 'delete')",
		"(:sessionVN < tupleVN) AND (operation <> 'insert')",
		"GROUP BY city, state",
	} {
		if !strings.Contains(got, fragment) {
			t.Errorf("rewritten query missing %q:\n%s", fragment, got)
		}
	}
	// Non-updatable attributes are untouched.
	if strings.Contains(got, "CASE WHEN (:sessionVN >= tupleVN) THEN city") {
		t.Error("rewrite wrapped a non-updatable attribute in CASE")
	}
}

// TestFigure3Overhead verifies the schema-extension storage numbers the
// paper reports: DailySales grows from 42 to 51 bytes, about 20%.
func TestFigure3Overhead(t *testing.T) {
	ext, err := ExtendSchema(dailySalesSchema(), 2)
	if err != nil {
		t.Fatal(err)
	}
	base, extended, ratio := ext.Overhead()
	if base != 42 {
		t.Errorf("base bytes = %d, want 42", base)
	}
	if extended != 51 {
		t.Errorf("extended bytes = %d, want 51 (Figure 3)", extended)
	}
	if ratio < 0.20 || ratio > 0.22 {
		t.Errorf("overhead = %.3f, want ≈ 0.214 (the paper's ≈20%%)", ratio)
	}
	// Worst case: every attribute updatable → roughly doubling (§3.1).
	worst := catalog.MustSchema("w", []catalog.Column{
		{Name: "a", Type: catalog.TypeInt, Length: 8, Updatable: true},
		{Name: "b", Type: catalog.TypeInt, Length: 8, Updatable: true},
	})
	we, _ := ExtendSchema(worst, 2)
	_, _, wr := we.Overhead()
	if wr < 1.0 {
		t.Errorf("worst-case overhead = %.2f, want >= 1.0 (approximately doubling)", wr)
	}
}
