package core

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
)

// Column-name conventions for the schema extension (§3.1). For n = 2 the
// names match the paper exactly: tupleVN, operation, pre_<attr>. For n > 2
// the version slots are numbered: tupleVN1..tupleVN<n-1>, operation1.., and
// pre1_<attr>.. (§5, Figure 7).
const (
	colTupleVN   = "tupleVN"
	colOperation = "operation"
	preBase      = "pre"
	// tupleVNBytes and operationBytes are the storage footprints of the
	// bookkeeping columns, matching Figure 3 (tupleVN 4 bytes, operation 1
	// byte).
	tupleVNBytes   = 4
	operationBytes = 1
)

// Layout describes where the version bookkeeping lives inside an extended
// tuple: for each version slot j (1-based, 1..n−1), the positions of
// tupleVNj, operationj, and the pre-update copies of the updatable
// attributes; plus where the base attributes sit.
type Layout struct {
	// N is the number of logically available versions (2 for 2VNL).
	N int
	// BaseStart is the index of the first base attribute; base attributes
	// are contiguous.
	BaseStart int
	// BaseLen is the number of base attributes.
	BaseLen int
	// Upd holds base-relative indexes of the updatable attributes, in
	// schema order.
	Upd []int
	// TVN[j-1] is the extended-tuple index of tupleVNj.
	TVN []int
	// OpCol[j-1] is the extended-tuple index of operationj.
	OpCol []int
	// Pre[j-1][k] is the extended-tuple index of the slot-j pre-update
	// copy of the k-th updatable attribute.
	Pre [][]int
}

// ExtTable couples a base schema with its 2VNL/nVNL extension.
type ExtTable struct {
	// Base is the relation schema as the warehouse user declared it.
	Base *catalog.Schema
	// Ext is the extended physical schema stored in the engine.
	Ext *catalog.Schema
	// L locates the bookkeeping columns.
	L Layout
}

// slotColNames returns the tupleVN/operation column names for slot j under
// n versions.
func slotColNames(n, j int) (tvn, op string) {
	if n == 2 {
		return colTupleVN, colOperation
	}
	return fmt.Sprintf("%s%d", colTupleVN, j), fmt.Sprintf("%s%d", colOperation, j)
}

// preColName returns the slot-j pre-update column name for base column col
// under n versions.
func preColName(n, j int, col string) string {
	if n == 2 {
		return preBase + "_" + col
	}
	return fmt.Sprintf("%s%d_%s", preBase, j, col)
}

// ExtendSchema builds the 2VNL/nVNL extended schema for a base relation
// (§3.1, §5). The layout is: slot-1 bookkeeping (tupleVN, operation), the
// base attributes, the slot-1 pre-update copies, then — for n > 2 — one
// (tupleVNj, operationj, prej_*) group per additional slot, matching the
// paper's Figure 3 (n = 2) and Figure 7 (n = 4) presentations.
//
// It returns an error if n < 2 or if the base schema already uses a
// reserved column name.
func ExtendSchema(base *catalog.Schema, n int) (*ExtTable, error) {
	if n < 2 {
		return nil, fmt.Errorf("core: need n >= 2 versions, got %d", n)
	}
	reserved := make(map[string]bool)
	for j := 1; j <= n-1; j++ {
		tvn, op := slotColNames(n, j)
		reserved[strings.ToLower(tvn)] = true
		reserved[strings.ToLower(op)] = true
		for _, c := range base.Columns {
			if c.Updatable {
				reserved[strings.ToLower(preColName(n, j, c.Name))] = true
			}
		}
	}
	for _, c := range base.Columns {
		if reserved[strings.ToLower(c.Name)] {
			return nil, fmt.Errorf("core: base column %q collides with a reserved 2VNL column name", c.Name)
		}
	}

	var cols []catalog.Column
	l := Layout{N: n}
	tvn1, op1 := slotColNames(n, 1)
	l.TVN = append(l.TVN, len(cols))
	cols = append(cols, catalog.Column{Name: tvn1, Type: catalog.TypeInt, Length: tupleVNBytes})
	l.OpCol = append(l.OpCol, len(cols))
	cols = append(cols, catalog.Column{Name: op1, Type: catalog.TypeString, Length: operationBytes})

	l.BaseStart = len(cols)
	l.BaseLen = len(base.Columns)
	for i, c := range base.Columns {
		cols = append(cols, c)
		if c.Updatable {
			l.Upd = append(l.Upd, i)
		}
	}
	pre1 := make([]int, 0, len(l.Upd))
	for _, ui := range l.Upd {
		c := base.Columns[ui]
		pre1 = append(pre1, len(cols))
		cols = append(cols, catalog.Column{Name: preColName(n, 1, c.Name), Type: c.Type, Length: c.Length})
	}
	l.Pre = append(l.Pre, pre1)

	for j := 2; j <= n-1; j++ {
		tvnj, opj := slotColNames(n, j)
		l.TVN = append(l.TVN, len(cols))
		cols = append(cols, catalog.Column{Name: tvnj, Type: catalog.TypeInt, Length: tupleVNBytes})
		l.OpCol = append(l.OpCol, len(cols))
		cols = append(cols, catalog.Column{Name: opj, Type: catalog.TypeString, Length: operationBytes})
		prej := make([]int, 0, len(l.Upd))
		for _, ui := range l.Upd {
			c := base.Columns[ui]
			prej = append(prej, len(cols))
			cols = append(cols, catalog.Column{Name: preColName(n, j, c.Name), Type: c.Type, Length: c.Length})
		}
		l.Pre = append(l.Pre, prej)
	}

	ext, err := catalog.NewSchema(base.Name, cols, base.KeyNames()...)
	if err != nil {
		return nil, err
	}
	return &ExtTable{Base: base.Clone(), Ext: ext, L: l}, nil
}

// Overhead reports the storage cost of the extension: base and extended
// bytes per tuple and the relative increase. For the paper's DailySales
// schema this is 42 → 51 bytes, about 21% (Figure 3); for a worst-case
// all-updatable schema it approaches (n−1)×.
func (e *ExtTable) Overhead() (baseBytes, extBytes int, ratio float64) {
	baseBytes = e.Base.RowBytes()
	extBytes = e.Ext.RowBytes()
	return baseBytes, extBytes, float64(extBytes)/float64(baseBytes) - 1
}

// IsUpdatable reports whether base column index i is updatable, and if so
// its ordinal among the updatable columns.
func (e *ExtTable) IsUpdatable(i int) (ord int, ok bool) {
	for k, ui := range e.L.Upd {
		if ui == i {
			return k, true
		}
	}
	return 0, false
}

// Accessors over extended tuples. Slot j is 1-based (1..n−1); slot 1 is the
// most recent modification.

// TupleVN returns tupleVNj of an extended tuple (0 when the slot is unused;
// unused slots never shadow any session because sessions start at VN 1).
func (e *ExtTable) TupleVN(t catalog.Tuple, j int) VN {
	v := t[e.L.TVN[j-1]]
	if v.IsNull() {
		return 0
	}
	return VN(v.Int())
}

// OpAt returns operationj of an extended tuple.
func (e *ExtTable) OpAt(t catalog.Tuple, j int) Op {
	v := t[e.L.OpCol[j-1]]
	if v.IsNull() {
		return OpNone
	}
	return Op(v.Str())
}

// SetSlot writes tupleVNj and operationj.
func (e *ExtTable) SetSlot(t catalog.Tuple, j int, vn VN, op Op) {
	t[e.L.TVN[j-1]] = catalog.NewInt(int64(vn))
	if op == OpNone {
		t[e.L.OpCol[j-1]] = catalog.Null
	} else {
		t[e.L.OpCol[j-1]] = catalog.NewString(string(op))
	}
}

// BaseValues extracts the current (CV) base attribute values.
func (e *ExtTable) BaseValues(t catalog.Tuple) catalog.Tuple {
	out := make(catalog.Tuple, e.L.BaseLen)
	copy(out, t[e.L.BaseStart:e.L.BaseStart+e.L.BaseLen])
	return out
}

// SetBaseValues overwrites the current base attribute values (CV ← vals).
func (e *ExtTable) SetBaseValues(t catalog.Tuple, vals catalog.Tuple) {
	copy(t[e.L.BaseStart:e.L.BaseStart+e.L.BaseLen], vals)
}

// PreValues returns the slot-j pre-update values aligned with the updatable
// columns (k-th entry is the pre-image of the k-th updatable column).
func (e *ExtTable) PreValues(t catalog.Tuple, j int) catalog.Tuple {
	cols := e.L.Pre[j-1]
	out := make(catalog.Tuple, len(cols))
	for k, ci := range cols {
		out[k] = t[ci]
	}
	return out
}

// SetPreValues writes the slot-j pre-update values.
func (e *ExtTable) SetPreValues(t catalog.Tuple, j int, vals catalog.Tuple) {
	cols := e.L.Pre[j-1]
	for k, ci := range cols {
		t[ci] = vals[k]
	}
}

// NullPre returns an all-NULL pre-update vector (for insert operations,
// whose pre-update attributes are null — §3.1).
func (e *ExtTable) NullPre() catalog.Tuple {
	out := make(catalog.Tuple, len(e.L.Upd))
	for i := range out {
		out[i] = catalog.Null
	}
	return out
}

// CurrentUpd extracts the current values of the updatable columns from the
// CV section, aligned like PreValues.
func (e *ExtTable) CurrentUpd(t catalog.Tuple) catalog.Tuple {
	out := make(catalog.Tuple, len(e.L.Upd))
	for k, ui := range e.L.Upd {
		out[k] = t[e.L.BaseStart+ui]
	}
	return out
}

// NewExtTuple builds a fresh extended tuple for a logical insert at vn:
// slot 1 = (vn, insert), CV = base values, every pre-update attribute NULL,
// older slots unused (Table 2, row 3).
func (e *ExtTable) NewExtTuple(base catalog.Tuple, vn VN) catalog.Tuple {
	t := make(catalog.Tuple, len(e.Ext.Columns))
	for i := range t {
		t[i] = catalog.Null
	}
	e.SetSlot(t, 1, vn, OpInsert)
	e.SetBaseValues(t, base)
	for j := 2; j <= e.L.N-1; j++ {
		t[e.L.TVN[j-1]] = catalog.NewInt(0)
	}
	return t
}

// PushBack shifts version slots down by one (slot j's bookkeeping moves to
// slot j+1, the oldest slot falls off), making room for a new slot-1 entry.
// This is the nVNL "push back" of §5; for n = 2 there is nowhere to shift,
// so it is a no-op (slot 1 is simply overwritten by the caller).
func (e *ExtTable) PushBack(t catalog.Tuple) {
	for j := e.L.N - 1; j >= 2; j-- {
		t[e.L.TVN[j-1]] = t[e.L.TVN[j-2]]
		t[e.L.OpCol[j-1]] = t[e.L.OpCol[j-2]]
		for k := range e.L.Pre[j-1] {
			t[e.L.Pre[j-1][k]] = t[e.L.Pre[j-2][k]]
		}
	}
}

// PopFront is the inverse shift of PushBack: slot j+1's bookkeeping moves
// to slot j and the oldest slot is cleared. nVNL needs it for one of the
// cases §5 leaves unenumerated: when a transaction re-inserts over an
// earlier delete (Table 2 row 1, which pushed the history back) and then
// deletes again in the same transaction, the net effect on the tuple is
// nothing — the pushed-back history must be restored, not the tuple
// physically deleted, or concurrent nVNL readers lose versions they are
// still entitled to. The slot dropped by the original PushBack is
// unrecoverable, so the cleared oldest slot means this tuple can no longer
// trigger per-tuple expiration for very old sessions; the global check
// (§4.1) still covers them.
func (e *ExtTable) PopFront(t catalog.Tuple) {
	for j := 1; j <= e.L.N-2; j++ {
		t[e.L.TVN[j-1]] = t[e.L.TVN[j]]
		t[e.L.OpCol[j-1]] = t[e.L.OpCol[j]]
		for k := range e.L.Pre[j-1] {
			t[e.L.Pre[j-1][k]] = t[e.L.Pre[j][k]]
		}
	}
	last := e.L.N - 1
	t[e.L.TVN[last-1]] = catalog.NewInt(0)
	t[e.L.OpCol[last-1]] = catalog.Null
	for k := range e.L.Pre[last-1] {
		t[e.L.Pre[last-1][k]] = catalog.Null
	}
}

// KeyOfBase extracts the unique key from a base tuple.
func (e *ExtTable) KeyOfBase(base catalog.Tuple) catalog.Tuple {
	return e.Base.KeyOf(base)
}
