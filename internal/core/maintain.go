package core

import (
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
)

// RollbackMode selects how a maintenance transaction aborts.
type RollbackMode int

const (
	// RollbackLogless reverts tuples using only the version information
	// stored inside them — the paper's §7 future-work proposal. No undo
	// log is kept; the price is that sessions older than currentVN are
	// expired by the rollback, because a reverted tuple can no longer
	// serve its pre-update version (the pre-update slot was consumed by
	// the aborted transaction).
	RollbackLogless RollbackMode = iota
	// RollbackUndoLog keeps a small in-memory undo record per touched
	// tuple — only the version bookkeeping and updatable-attribute
	// section, not a full before-image — and restores it exactly on
	// abort. No session expires.
	RollbackUndoLog
)

// MaintStats counts a maintenance transaction's logical operations and the
// physical operations they translated to (§3.3 stresses they differ: a
// logical delete is usually a physical update). The I/O experiments report
// these.
type MaintStats struct {
	LogicalInserts  int
	LogicalUpdates  int
	LogicalDeletes  int
	PhysicalInserts int
	PhysicalUpdates int
	PhysicalDeletes int
	// NetEffectFolds counts second-touches: operations on tuples this
	// transaction had already modified, whose recorded operation was
	// folded into a net effect (Tables 2–4, second rows).
	NetEffectFolds int
}

// undoRec restores one tuple's mutable section (or removes a tuple this
// transaction physically inserted).
type undoRec struct {
	vt       *VTable
	rid      storage.RID
	inserted bool          // physical insert: undo by deleting
	image    catalog.Tuple // full extended tuple before first touch
}

// Maintenance is the warehouse's single writer: a batch maintenance
// transaction running at maintenanceVN = currentVN + 1. It reads current
// versions, folds logical operations into tuples per the decision tables,
// and never blocks or is blocked by reader sessions.
type Maintenance struct {
	store *Store
	vn    VN
	mode  RollbackMode
	done  bool
	// netEffect disables the second-row net-effect folding when false —
	// an ablation switch used to demonstrate why the folding matters.
	netEffect bool
	began     time.Time
	// ap is the root applier: the sequential write path runs on it, and
	// ApplyBatch merges its workers' counters and undo records into it, so
	// Stats, Commit, and Rollback always see the whole transaction here.
	ap *applier
	// broken poisons the transaction after a failed parallel batch left
	// the journal and the heap potentially divergent: Commit refuses and
	// the caller must Rollback (whose abort record makes recovery skip the
	// transaction). Never set by the sequential path.
	broken error
	// batchPartStart/batchPartDone, when non-nil, run on the worker
	// goroutine around each partition of a parallel batch (test seam for
	// forcing deterministic worker interleavings).
	batchPartStart func(part int)
	batchPartDone  func(part int)
}

// met returns the store's metrics (never nil).
func (m *Maintenance) met() *storeMetrics { return m.store.metrics }

// BeginMaintenance starts the maintenance transaction: it reads currentVN,
// sets maintenanceVN = currentVN + 1, and raises the global
// maintenanceActive flag (§3). Only one maintenance transaction may run at
// a time; a second call returns ErrMaintenanceActive.
func (s *Store) BeginMaintenance() (*Maintenance, error) {
	return s.beginMaintenance(RollbackUndoLog, true)
}

// BeginMaintenanceMode is BeginMaintenance with an explicit rollback mode
// and net-effect switch (the latter only for ablation experiments; disable
// it and readers observe incorrect states, which is the point of the
// experiment).
func (s *Store) BeginMaintenanceMode(mode RollbackMode, netEffect bool) (*Maintenance, error) {
	return s.beginMaintenance(mode, netEffect)
}

func (s *Store) beginMaintenance(mode RollbackMode, netEffect bool) (*Maintenance, error) {
	acquired := s.latchAcquire()
	cur, active := s.globalsLocked()
	if active {
		s.latchRelease(acquired)
		return nil, ErrMaintenanceActive
	}
	m := &Maintenance{store: s, vn: cur + 1, mode: mode, netEffect: netEffect, began: time.Now()}
	m.ap = &applier{m: m}
	j := s.journal
	if err := s.setGlobalsLocked(cur, true); err != nil {
		s.latchRelease(acquired)
		return nil, fmt.Errorf("core: raising maintenanceActive: %w", err)
	}
	s.maint = m
	s.latchRelease(acquired)
	// Journal the begin record outside the latch: the append may block on
	// I/O and the §3 latch must stay short-duration. Write-ahead is
	// preserved — no tuple record can be emitted before this call returns
	// the Maintenance handle, and the active flag set above excludes a
	// competing begin.
	if j != nil {
		j.LogBegin(m.vn)
	}
	mm := s.metrics
	mm.maintBegun.Inc()
	mm.maintActive.Set(1)
	mm.trace(TraceMaintBegin, m.vn, 0)
	return m, nil
}

// VN returns maintenanceVN.
func (m *Maintenance) VN() VN { return m.vn }

// Stats returns the operation counters so far.
func (m *Maintenance) Stats() MaintStats { return m.ap.stats }

func (m *Maintenance) checkActive() error {
	if m.done {
		return ErrMaintenanceDone
	}
	return nil
}

// table resolves a registered versioned relation.
func (m *Maintenance) table(name string) (*VTable, error) {
	return m.store.Table(name)
}

// Insert performs a logical insert of a base-schema tuple, implementing
// Table 2. For relations with a unique key, a key conflict with a
// logically-deleted tuple converts the insert into a physical update (rows
// one and two); a conflict with a live tuple is impossible in a valid
// transaction and returns ErrInvalidMaintenanceOp. The Tables 2–4 folding
// itself lives on the applier (apply.go), shared with the parallel batch
// path.
func (m *Maintenance) Insert(tableName string, base catalog.Tuple) error {
	if err := m.checkActive(); err != nil {
		return err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return err
	}
	return m.ap.insert(vt, base)
}

// UpdateWhere applies a logical update to every current-version tuple
// satisfying pred, cursor-style (§4.2.2): matching RIDs are collected
// first, then each tuple is re-read and folded individually. set receives
// the current base tuple and returns the new one.
func (m *Maintenance) UpdateWhere(tableName string, pred func(catalog.Tuple) bool, set func(catalog.Tuple) catalog.Tuple) (int, error) {
	if err := m.checkActive(); err != nil {
		return 0, err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return 0, err
	}
	rids := m.cursorSelect(vt, pred)
	n := 0
	for _, rid := range rids {
		ext, err := vt.tbl.Get(rid)
		if err != nil {
			continue
		}
		cur, visible := vt.ext.CurrentVersion(ext)
		if !visible || (pred != nil && !pred(cur)) {
			continue
		}
		if err := m.ap.applyUpdate(vt, rid, ext, set(cur.Clone())); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// DeleteWhere applies a logical delete to every current-version tuple
// satisfying pred, cursor-style (§4.2.3).
func (m *Maintenance) DeleteWhere(tableName string, pred func(catalog.Tuple) bool) (int, error) {
	if err := m.checkActive(); err != nil {
		return 0, err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return 0, err
	}
	rids := m.cursorSelect(vt, pred)
	n := 0
	for _, rid := range rids {
		ext, err := vt.tbl.Get(rid)
		if err != nil {
			continue
		}
		cur, visible := vt.ext.CurrentVersion(ext)
		if !visible || (pred != nil && !pred(cur)) {
			continue
		}
		if err := m.ap.applyDelete(vt, rid, ext); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// UpdateKey updates the single tuple with the given unique key. It reports
// whether a live tuple with that key existed.
func (m *Maintenance) UpdateKey(tableName string, key catalog.Tuple, set func(catalog.Tuple) catalog.Tuple) (bool, error) {
	if err := m.checkActive(); err != nil {
		return false, err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return false, err
	}
	rid, ok := vt.tbl.SearchKey(key)
	if !ok {
		return false, nil
	}
	ext, err := vt.tbl.Get(rid)
	if err != nil {
		return false, nil
	}
	cur, visible := vt.ext.CurrentVersion(ext)
	if !visible {
		return false, nil
	}
	return true, m.ap.applyUpdate(vt, rid, ext, set(cur.Clone()))
}

// DeleteKey logically deletes the tuple with the given unique key. It
// reports whether a live tuple with that key existed.
func (m *Maintenance) DeleteKey(tableName string, key catalog.Tuple) (bool, error) {
	if err := m.checkActive(); err != nil {
		return false, err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return false, err
	}
	rid, ok := vt.tbl.SearchKey(key)
	if !ok {
		return false, nil
	}
	ext, err := vt.tbl.Get(rid)
	if err != nil {
		return false, nil
	}
	if _, visible := vt.ext.CurrentVersion(ext); !visible {
		return false, nil
	}
	return true, m.ap.applyDelete(vt, rid, ext)
}

// GetCurrent returns the current version of the tuple with the given key,
// as the maintenance transaction sees it (first row of Table 1).
func (m *Maintenance) GetCurrent(tableName string, key catalog.Tuple) (catalog.Tuple, bool, error) {
	vt, err := m.table(tableName)
	if err != nil {
		return nil, false, err
	}
	rid, ok := vt.tbl.SearchKey(key)
	if !ok {
		return nil, false, nil
	}
	ext, err := vt.tbl.Get(rid)
	if err != nil {
		return nil, false, nil
	}
	cur, visible := vt.ext.CurrentVersion(ext)
	return cur, visible, nil
}

// cursorSelect collects the RIDs of current-version-visible tuples
// matching pred, without holding any latch across the whole scan.
func (m *Maintenance) cursorSelect(vt *VTable, pred func(catalog.Tuple) bool) []storage.RID {
	var rids []storage.RID
	vt.tbl.Scan(func(rid storage.RID, t catalog.Tuple) bool {
		cur, visible := vt.ext.CurrentVersion(t)
		if !visible {
			return true
		}
		if pred == nil || pred(cur) {
			rids = append(rids, rid)
		}
		return true
	})
	return rids
}

// Query runs a SELECT as the maintenance transaction: the reader rewrite
// with sessionVN bound to maintenanceVN, so the transaction reads the
// latest version of every tuple including its own uncommitted changes
// (§3.3).
func (m *Maintenance) Query(text string, params exec.Params) (*exec.Rows, error) {
	if err := m.checkActive(); err != nil {
		return nil, err
	}
	sel, err := sql.ParseSelect(text)
	if err != nil {
		return nil, err
	}
	rw, err := RewriteSelect(m.store, sel)
	if err != nil {
		return nil, err
	}
	return exec.Select(queryCatalog{m.store}, rw, withSessionVN(params, m.vn))
}

// Exec parses and applies a maintenance DML statement — INSERT, UPDATE, or
// DELETE over a base schema — by rewriting it into the cursor loops of
// §4.2. Returns the number of logical rows affected.
func (m *Maintenance) Exec(text string, params exec.Params) (int, error) {
	if err := m.checkActive(); err != nil {
		return 0, err
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return 0, err
	}
	switch st := stmt.(type) {
	case *sql.InsertStmt:
		return m.execInsert(st, params)
	case *sql.UpdateStmt:
		return m.execUpdate(st, params)
	case *sql.DeleteStmt:
		return m.execDelete(st, params)
	default:
		return 0, fmt.Errorf("core: maintenance cannot execute %T", stmt)
	}
}

func (m *Maintenance) execInsert(st *sql.InsertStmt, params exec.Params) (int, error) {
	vt, err := m.table(st.Table)
	if err != nil {
		return 0, err
	}
	base := vt.ext.Base
	colIdx := make([]int, 0, len(st.Columns))
	if st.Columns == nil {
		for i := range base.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range st.Columns {
			idx := base.ColIndex(name)
			if idx < 0 {
				return 0, fmt.Errorf("core: table %q has no column %q", st.Table, name)
			}
			colIdx = append(colIdx, idx)
		}
	}
	n := 0
	for _, row := range st.Rows {
		if len(row) != len(colIdx) {
			return n, fmt.Errorf("core: INSERT row has %d values for %d columns", len(row), len(colIdx))
		}
		t := make(catalog.Tuple, len(base.Columns))
		for i := range t {
			t[i] = catalog.Null
		}
		for i, e := range row {
			v, err := exec.EvalConst(e, params)
			if err != nil {
				return n, err
			}
			t[colIdx[i]] = v
		}
		if err := m.Insert(st.Table, t); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (m *Maintenance) execUpdate(st *sql.UpdateStmt, params exec.Params) (int, error) {
	vt, err := m.table(st.Table)
	if err != nil {
		return 0, err
	}
	base := vt.ext.Base
	setIdx := make([]int, len(st.Sets))
	for i, set := range st.Sets {
		idx := base.ColIndex(set.Column)
		if idx < 0 {
			return 0, fmt.Errorf("core: table %q has no column %q", st.Table, set.Column)
		}
		setIdx[i] = idx
	}
	ev := exec.NewRowEval(st.Table, base, params)
	pred := func(cur catalog.Tuple) bool {
		if st.Where == nil {
			return true
		}
		ok, err := ev.Truthy(st.Where, cur)
		return err == nil && ok
	}
	var evalErr error
	n, err := m.UpdateWhere(st.Table, pred, func(cur catalog.Tuple) catalog.Tuple {
		out := cur.Clone()
		for i, set := range st.Sets {
			v, err := ev.Value(set.Expr, cur)
			if err != nil {
				evalErr = err
				return out
			}
			out[setIdx[i]] = v
		}
		return out
	})
	if evalErr != nil {
		return n, evalErr
	}
	return n, err
}

func (m *Maintenance) execDelete(st *sql.DeleteStmt, params exec.Params) (int, error) {
	vt, err := m.table(st.Table)
	if err != nil {
		return 0, err
	}
	ev := exec.NewRowEval(st.Table, vt.ext.Base, params)
	return m.DeleteWhere(st.Table, func(cur catalog.Tuple) bool {
		if st.Where == nil {
			return true
		}
		ok, err := ev.Truthy(st.Where, cur)
		return err == nil && ok
	})
}

// Commit installs the transaction's version: currentVN ← maintenanceVN and
// maintenanceActive ← false, under the global latch (§3). (The paper notes
// that in a pure SQL deployment the Version-relation update should run as
// its own tiny transaction immediately after the maintenance commit so an
// abort never exposes a half-installed version; with the latched update
// here the installation is atomic.)
func (m *Maintenance) Commit() error {
	if err := m.checkActive(); err != nil {
		return err
	}
	if m.broken != nil {
		return fmt.Errorf("core: commit refused after failed parallel batch: %w", m.broken)
	}
	start := time.Now()
	s := m.store
	if j := s.journalOrNil(); j != nil {
		// Write-ahead rule: the commit record is durable before the new
		// version becomes visible.
		if err := j.LogCommit(m.vn); err != nil {
			return fmt.Errorf("core: commit journal: %w", err)
		}
	}
	// Install under the latch, retrying transient failures per the
	// store's policy. The latch is released for every backoff — readers
	// and the Version relation stay available while the install waits —
	// and reacquired for the next attempt.
	for attempt := 0; ; attempt++ {
		acquired := s.latchAcquire()
		err := s.setGlobalsLocked(m.vn, false)
		if err == nil {
			s.finishCommitLocked(m)
			s.latchRelease(acquired)
			break
		}
		s.latchRelease(acquired)
		if attempt+1 >= s.commitRetry.Attempts {
			// Nothing was installed: the transaction stays active, so
			// the caller can retry Commit or fall back to Rollback
			// rather than run against a version state diverged from the
			// relation.
			return fmt.Errorf("core: installing version %d: %w", m.vn, err)
		}
		s.metrics.commitRetries.Inc()
		s.commitRetry.Wait(attempt)
	}
	mm := s.metrics
	mm.commitNS.ObserveSince(start)
	mm.txnNS.ObserveSince(m.began)
	mm.maintCommits.Inc()
	mm.vnAdvances.Inc()
	mm.currentVN.Set(int64(m.vn))
	mm.maintActive.Set(0)
	phys := int64(m.ap.stats.PhysicalInserts + m.ap.stats.PhysicalUpdates + m.ap.stats.PhysicalDeletes)
	mm.trace(TraceMaintCommit, m.vn, phys)
	mm.trace(TraceVNAdvance, m.vn, 0)
	return nil
}

// finishCommitLocked retires the installed transaction's bookkeeping.
// Caller holds the latch.
func (s *Store) finishCommitLocked(m *Maintenance) {
	m.done = true
	m.ap.undo = nil
	s.maint = nil
}

// Rollback aborts the transaction and reverts every touched tuple to its
// pre-transaction state.
//
// In RollbackUndoLog mode the recorded bookkeeping images are restored
// exactly and no reader is affected.
//
// In RollbackLogless mode (§7) the revert uses only the version
// information inside each tuple: physically-inserted tuples are deleted,
// and modified tuples have their current values restored from the slot-1
// pre-update attributes, with slot 1 rewritten as (currentVN, update) — or
// (currentVN, delete) when the tuple was logically deleted before this
// transaction touched it. Because the aborted transaction consumed the
// slot-1 pre-update version, sessions older than currentVN can no longer be
// served and are expired, exactly as they would have been had the
// transaction committed and a new one begun.
func (m *Maintenance) Rollback() error {
	if err := m.checkActive(); err != nil {
		return err
	}
	start := time.Now()
	s := m.store
	if j := s.journalOrNil(); j != nil {
		j.LogAbort(m.vn)
	}
	if m.mode == RollbackUndoLog {
		// Reverse order restores first-touch images last, which is
		// correct because there is at most one record per tuple.
		touched := make(map[*VTable]bool)
		for i := len(m.ap.undo) - 1; i >= 0; i-- {
			u := m.ap.undo[i]
			touched[u.vt] = true
			if u.inserted {
				_ = u.vt.tbl.Delete(u.rid)
				continue
			}
			if err := u.vt.tbl.Update(u.rid, u.image); err != nil {
				return fmt.Errorf("core: rollback: %w", err)
			}
		}
		// Restored images lowered slot version numbers back below
		// maintenanceVN; rebuild the per-table watermarks so the
		// per-tuple expiration probe does not falsely expire sessions
		// this rollback was supposed to spare.
		for vt := range touched {
			vt.recomputeOldestHW()
		}
	} else {
		cur := s.CurrentVN()
		// Raise the expiration floor before touching any tuple: the
		// revert consumes the slot-1 pre-update versions, so a reader
		// older than currentVN that raced the revert must already see
		// itself expired by its post-query check rather than return
		// values from a half-reverted state.
		s.mu.Lock()
		if s.expireFloor < cur {
			s.expireFloor = cur
			s.publishLocked()
		}
		s.mu.Unlock()
		// Physically-inserted tuples are simply deleted (their records are
		// kept in both modes); everything else reverts from in-tuple
		// version information.
		for i := len(m.ap.undo) - 1; i >= 0; i-- {
			if m.ap.undo[i].inserted {
				_ = m.ap.undo[i].vt.tbl.Delete(m.ap.undo[i].rid)
			}
		}
		for _, vt := range s.Tables() {
			if err := m.rollbackTableLogless(vt, cur); err != nil {
				return err
			}
			vt.recomputeOldestHW()
		}
	}
	acquired := s.latchAcquire()
	curVN, _ := s.globalsLocked()
	if err := s.setGlobalsLocked(curVN, false); err != nil {
		s.latchRelease(acquired)
		return fmt.Errorf("core: clearing maintenanceActive: %w", err)
	}
	m.done = true
	m.ap.undo = nil
	s.maint = nil
	s.latchRelease(acquired)
	mm := s.metrics
	mm.rollbackNS.ObserveSince(start)
	mm.txnNS.ObserveSince(m.began)
	mm.maintRollbacks.Inc()
	mm.maintActive.Set(0)
	mm.trace(TraceMaintRollback, m.vn, 0)
	return nil
}

// rollbackTableLogless reverts every tuple the transaction touched in one
// table using only in-tuple information: the previous version is extracted
// as of currentVN (the paper's §7 observation that modified tuples contain
// enough information to recover their previous version).
func (m *Maintenance) rollbackTableLogless(vt *VTable, cur VN) error {
	e := vt.ext
	var touched []storage.RID
	vt.tbl.Scan(func(rid storage.RID, t catalog.Tuple) bool {
		if e.TupleVN(t, 1) == m.vn {
			touched = append(touched, rid)
		}
		return true
	})
	for _, rid := range touched {
		t, err := vt.tbl.Get(rid)
		if err != nil {
			continue // a physically-inserted tuple already removed above
		}
		prev, visible, err := e.ReadAsOf(t, cur)
		if err != nil {
			return fmt.Errorf("core: logless rollback cannot reconstruct version %d: %w", cur, err)
		}
		nt := t.Clone()
		if visible {
			// The tuple existed at cur: restore those values as current.
			e.SetBaseValues(nt, prev)
			e.SetSlot(nt, 1, cur, OpUpdate)
		} else {
			// The tuple was logically deleted at cur (this transaction
			// re-inserted over a deleted tuple): restore the delete
			// marker so the key stays reserved for conflict detection.
			e.SetSlot(nt, 1, cur, OpDelete)
		}
		// The slot-1 pre-update values were consumed by the aborted
		// transaction; leave them equal to the restored current values.
		// Sessions older than cur are expired by the store, so nothing
		// ever reads them.
		e.SetPreValues(nt, 1, e.CurrentUpd(nt))
		if err := vt.tbl.Update(rid, nt); err != nil {
			return err
		}
	}
	return nil
}
