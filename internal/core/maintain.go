package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
)

// RollbackMode selects how a maintenance transaction aborts.
type RollbackMode int

const (
	// RollbackLogless reverts tuples using only the version information
	// stored inside them — the paper's §7 future-work proposal. No undo
	// log is kept; the price is that sessions older than currentVN are
	// expired by the rollback, because a reverted tuple can no longer
	// serve its pre-update version (the pre-update slot was consumed by
	// the aborted transaction).
	RollbackLogless RollbackMode = iota
	// RollbackUndoLog keeps a small in-memory undo record per touched
	// tuple — only the version bookkeeping and updatable-attribute
	// section, not a full before-image — and restores it exactly on
	// abort. No session expires.
	RollbackUndoLog
)

// MaintStats counts a maintenance transaction's logical operations and the
// physical operations they translated to (§3.3 stresses they differ: a
// logical delete is usually a physical update). The I/O experiments report
// these.
type MaintStats struct {
	LogicalInserts  int
	LogicalUpdates  int
	LogicalDeletes  int
	PhysicalInserts int
	PhysicalUpdates int
	PhysicalDeletes int
	// NetEffectFolds counts second-touches: operations on tuples this
	// transaction had already modified, whose recorded operation was
	// folded into a net effect (Tables 2–4, second rows).
	NetEffectFolds int
}

// undoRec restores one tuple's mutable section (or removes a tuple this
// transaction physically inserted).
type undoRec struct {
	vt       *VTable
	rid      storage.RID
	inserted bool          // physical insert: undo by deleting
	image    catalog.Tuple // full extended tuple before first touch
}

// Maintenance is the warehouse's single writer: a batch maintenance
// transaction running at maintenanceVN = currentVN + 1. It reads current
// versions, folds logical operations into tuples per the decision tables,
// and never blocks or is blocked by reader sessions.
type Maintenance struct {
	store *Store
	vn    VN
	mode  RollbackMode
	done  bool
	undo  []undoRec
	// netEffect disables the second-row net-effect folding when false —
	// an ablation switch used to demonstrate why the folding matters.
	netEffect bool
	stats     MaintStats
	began     time.Time
}

// met returns the store's metrics (never nil).
func (m *Maintenance) met() *storeMetrics { return m.store.metrics }

// BeginMaintenance starts the maintenance transaction: it reads currentVN,
// sets maintenanceVN = currentVN + 1, and raises the global
// maintenanceActive flag (§3). Only one maintenance transaction may run at
// a time; a second call returns ErrMaintenanceActive.
func (s *Store) BeginMaintenance() (*Maintenance, error) {
	return s.beginMaintenance(RollbackUndoLog, true)
}

// BeginMaintenanceMode is BeginMaintenance with an explicit rollback mode
// and net-effect switch (the latter only for ablation experiments; disable
// it and readers observe incorrect states, which is the point of the
// experiment).
func (s *Store) BeginMaintenanceMode(mode RollbackMode, netEffect bool) (*Maintenance, error) {
	return s.beginMaintenance(mode, netEffect)
}

func (s *Store) beginMaintenance(mode RollbackMode, netEffect bool) (*Maintenance, error) {
	acquired := s.latchAcquire()
	cur, active := s.globalsLocked()
	if active {
		s.latchRelease(acquired)
		return nil, ErrMaintenanceActive
	}
	m := &Maintenance{store: s, vn: cur + 1, mode: mode, netEffect: netEffect, began: time.Now()}
	j := s.journal
	if err := s.setGlobalsLocked(cur, true); err != nil {
		s.latchRelease(acquired)
		return nil, fmt.Errorf("core: raising maintenanceActive: %w", err)
	}
	s.maint = m
	s.latchRelease(acquired)
	// Journal the begin record outside the latch: the append may block on
	// I/O and the §3 latch must stay short-duration. Write-ahead is
	// preserved — no tuple record can be emitted before this call returns
	// the Maintenance handle, and the active flag set above excludes a
	// competing begin.
	if j != nil {
		j.LogBegin(m.vn)
	}
	mm := s.metrics
	mm.maintBegun.Inc()
	mm.maintActive.Set(1)
	mm.trace(TraceMaintBegin, m.vn, 0)
	return m, nil
}

// VN returns maintenanceVN.
func (m *Maintenance) VN() VN { return m.vn }

// Stats returns the operation counters so far.
func (m *Maintenance) Stats() MaintStats { return m.stats }

func (m *Maintenance) checkActive() error {
	if m.done {
		return ErrMaintenanceDone
	}
	return nil
}

// table resolves a registered versioned relation.
func (m *Maintenance) table(name string) (*VTable, error) {
	return m.store.Table(name)
}

// snapshot records a tuple's pre-touch state for rollback, once per tuple.
func (m *Maintenance) snapshot(vt *VTable, rid storage.RID, ext catalog.Tuple, inserted bool) {
	if m.mode != RollbackUndoLog && !inserted {
		return
	}
	// Physical inserts must be undone in both modes (logless rollback can
	// also see op=insert in the tuple and delete it, but recording keeps
	// the undo path uniform and handles keyless tables).
	for _, u := range m.undo {
		if u.vt == vt && u.rid == rid {
			return
		}
	}
	rec := undoRec{vt: vt, rid: rid, inserted: inserted}
	if !inserted {
		rec.image = ext.Clone()
	}
	m.undo = append(m.undo, rec)
}

// physInsert performs and journals a physical tuple insert.
func (m *Maintenance) physInsert(vt *VTable, ext catalog.Tuple) (storage.RID, error) {
	rid, err := vt.tbl.Insert(ext)
	if err != nil {
		return rid, err
	}
	if j := m.store.journalOrNil(); j != nil {
		j.LogInsert(vt.ext.Base.Name, rid, ext)
	}
	vt.noteTupleWrite(ext)
	m.stats.PhysicalInserts++
	m.met().physIns.Inc()
	return rid, nil
}

// physUpdate performs and journals an in-place physical update.
func (m *Maintenance) physUpdate(vt *VTable, rid storage.RID, before, after catalog.Tuple) error {
	if err := vt.tbl.Update(rid, after); err != nil {
		return err
	}
	if j := m.store.journalOrNil(); j != nil {
		j.LogUpdate(vt.ext.Base.Name, rid, before, after)
	}
	vt.noteTupleWrite(after)
	m.stats.PhysicalUpdates++
	m.met().physUpd.Inc()
	return nil
}

// physDelete performs and journals a physical delete.
func (m *Maintenance) physDelete(vt *VTable, rid storage.RID, before catalog.Tuple) error {
	if err := vt.tbl.Delete(rid); err != nil {
		return err
	}
	if j := m.store.journalOrNil(); j != nil {
		j.LogDelete(vt.ext.Base.Name, rid, before)
	}
	vt.noteTupleRemoved(before)
	m.stats.PhysicalDeletes++
	m.met().physDel.Inc()
	return nil
}

// Insert performs a logical insert of a base-schema tuple, implementing
// Table 2. For relations with a unique key, a key conflict with a
// logically-deleted tuple converts the insert into a physical update (rows
// one and two); a conflict with a live tuple is impossible in a valid
// transaction and returns ErrInvalidMaintenanceOp.
func (m *Maintenance) Insert(tableName string, base catalog.Tuple) error {
	if err := m.checkActive(); err != nil {
		return err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return err
	}
	base, err = vt.ext.Base.Validate(base)
	if err != nil {
		return err
	}
	m.stats.LogicalInserts++
	m.met().logicalIns.Inc()
	e := vt.ext
	if e.Base.HasKey() {
		key := e.KeyOfBase(base)
		if rid, ok := vt.tbl.SearchKey(key); ok {
			ext, err := vt.tbl.Get(rid)
			if err == nil {
				return m.insertOnConflict(vt, rid, ext, base)
			}
		}
	}
	// Table 2, row 3: no conflicting tuple.
	ext := e.NewExtTuple(base, m.vn)
	rid, err := m.physInsert(vt, ext)
	if err != nil {
		if errors.Is(err, db.ErrDuplicateKey) {
			return fmt.Errorf("%w: insert of live key %v into %s", ErrInvalidMaintenanceOp, e.KeyOfBase(base), tableName)
		}
		return err
	}
	m.snapshot(vt, rid, nil, true)
	m.met().cellT2R3.Inc()
	return nil
}

// insertOnConflict handles Table 2 rows one and two: the key exists
// physically. Valid only when the existing tuple is logically deleted.
func (m *Maintenance) insertOnConflict(vt *VTable, rid storage.RID, ext catalog.Tuple, base catalog.Tuple) error {
	e := vt.ext
	prevOp := e.OpAt(ext, 1)
	tvn := e.TupleVN(ext, 1)
	if prevOp != OpDelete {
		return fmt.Errorf("%w: insert of live key %v into %s (previous operation %s)",
			ErrInvalidMaintenanceOp, e.KeyOfBase(base), e.Base.Name, prevOp)
	}
	m.snapshot(vt, rid, ext, false)
	t := ext.Clone()
	if tvn < m.vn {
		// Row 1: tuple deleted by an earlier transaction. Push the delete
		// back a slot (nVNL), record this slot as an insert with NULL
		// pre-update attributes, and install the new values.
		e.PushBack(t)
		e.SetSlot(t, 1, m.vn, OpInsert)
		e.SetPreValues(t, 1, e.NullPre())
		e.SetBaseValues(t, base)
	} else {
		// Row 2: deleted by this same transaction. Net effect of delete
		// then insert is an update (§3.3); the pre-update attributes
		// already hold the pre-transaction values.
		e.SetBaseValues(t, base)
		op := OpUpdate
		if !m.netEffect {
			op = OpInsert // ablation: record the raw operation
		}
		e.SetSlot(t, 1, m.vn, op)
		m.stats.NetEffectFolds++
		m.met().netFolds.Inc()
	}
	if err := m.physUpdate(vt, rid, ext, t); err != nil {
		return err
	}
	if tvn < m.vn {
		m.met().cellT2R1.Inc()
	} else {
		m.met().cellT2R2.Inc()
	}
	return nil
}

// applyUpdate folds a logical update of one tuple (Table 3). newBase must
// differ from the current values only in updatable attributes.
func (m *Maintenance) applyUpdate(vt *VTable, rid storage.RID, ext catalog.Tuple, newBase catalog.Tuple) error {
	e := vt.ext
	if e.OpAt(ext, 1) == OpDelete {
		return fmt.Errorf("%w: update of logically-deleted tuple in %s", ErrInvalidMaintenanceOp, e.Base.Name)
	}
	newBase, err := e.Base.Validate(newBase)
	if err != nil {
		return err
	}
	cur := e.BaseValues(ext)
	for i := range cur {
		if _, upd := e.IsUpdatable(i); !upd && !catalog.Equal(cur[i], newBase[i]) {
			return fmt.Errorf("core: update changes non-updatable column %q of %s",
				e.Base.Columns[i].Name, e.Base.Name)
		}
	}
	m.stats.LogicalUpdates++
	m.met().logicalUpd.Inc()
	m.snapshot(vt, rid, ext, false)
	t := ext.Clone()
	if e.TupleVN(ext, 1) < m.vn {
		// Row 1: first touch by this transaction — preserve the current
		// values as the new slot-1 pre-update version.
		e.PushBack(t)
		e.SetPreValues(t, 1, e.CurrentUpd(t))
		e.SetSlot(t, 1, m.vn, OpUpdate)
		e.SetBaseValues(t, newBase)
	} else {
		// Row 2: already modified by this transaction — overwrite the
		// current values only; the recorded operation keeps its net
		// effect (insert stays insert).
		e.SetBaseValues(t, newBase)
		if !m.netEffect {
			e.SetSlot(t, 1, m.vn, OpUpdate) // ablation: clobber the net effect
		}
		m.stats.NetEffectFolds++
		m.met().netFolds.Inc()
	}
	if err := m.physUpdate(vt, rid, ext, t); err != nil {
		return err
	}
	if e.TupleVN(ext, 1) < m.vn {
		m.met().cellT3R1.Inc()
	} else {
		m.met().cellT3R2.Inc()
	}
	return nil
}

// applyDelete folds a logical delete of one tuple (Table 4).
func (m *Maintenance) applyDelete(vt *VTable, rid storage.RID, ext catalog.Tuple) error {
	e := vt.ext
	if e.OpAt(ext, 1) == OpDelete {
		return fmt.Errorf("%w: delete of logically-deleted tuple in %s", ErrInvalidMaintenanceOp, e.Base.Name)
	}
	m.stats.LogicalDeletes++
	m.met().logicalDel.Inc()
	if e.TupleVN(ext, 1) < m.vn {
		// Row 1: preserve the current values as the pre-update version and
		// mark the tuple logically deleted. The physical operation is an
		// update — the tuple stays for readers (§3.3).
		m.snapshot(vt, rid, ext, false)
		t := ext.Clone()
		e.PushBack(t)
		e.SetPreValues(t, 1, e.CurrentUpd(t))
		e.SetSlot(t, 1, m.vn, OpDelete)
		if err := m.physUpdate(vt, rid, ext, t); err != nil {
			return err
		}
		m.met().cellT4R1.Inc()
		return nil
	}
	// Row 2: modified earlier by this same transaction. The net effect
	// depends on which operation this transaction already recorded — the
	// switch mirrors Table 4's row-2 cells and is checked for coverage by
	// vnlvet's tableexhaustive analyzer.
	switch e.OpAt(ext, 1) {
	case OpInsert:
		if e.L.N > 2 && e.TupleVN(ext, 2) > 0 {
			// The "insert" was a re-insert over an earlier delete (Table 2
			// row 1) that pushed older history back. Insert+delete nets to
			// nothing, so pop the slots to restore that history instead of
			// physically deleting — nVNL readers may still need it. (The
			// restored slot-1 operation is necessarily the earlier delete,
			// so the stale current values are never read.)
			m.snapshot(vt, rid, ext, false)
			t := ext.Clone()
			e.PopFront(t)
			if err := m.physUpdate(vt, rid, ext, t); err != nil {
				return err
			}
			m.stats.NetEffectFolds++
			m.met().netFolds.Inc()
			m.met().cellT4R2InsPop.Inc()
			return nil
		}
		// A fresh physical insert (or 2VNL, where no concurrent session
		// can see a version older than the pre-insert delete): insert then
		// delete nets to nothing — physically delete.
		if err := m.physDelete(vt, rid, ext); err != nil {
			return err
		}
		m.stats.NetEffectFolds++
		m.met().netFolds.Inc()
		m.met().cellT4R2InsDelete.Inc()
		m.dropUndo(vt, rid)
		return nil
	case OpUpdate:
		// Previously updated by this transaction: net effect is delete.
		m.snapshot(vt, rid, ext, false)
		t := ext.Clone()
		e.SetSlot(t, 1, m.vn, OpDelete)
		if err := m.physUpdate(vt, rid, ext, t); err != nil {
			return err
		}
		m.stats.NetEffectFolds++
		m.met().netFolds.Inc()
		m.met().cellT4R2Update.Inc()
		return nil
	default:
		// OpDelete is rejected on entry and OpNone never carries
		// tupleVN == maintenanceVN; reaching here is a bookkeeping bug.
		return fmt.Errorf("%w: delete of %s tuple with unexpected slot-1 operation %s",
			ErrInvalidMaintenanceOp, e.Base.Name, e.OpAt(ext, 1))
	}
}

// dropUndo removes the undo record for a tuple this transaction inserted
// and then physically deleted (insert + delete nets to nothing).
func (m *Maintenance) dropUndo(vt *VTable, rid storage.RID) {
	for i, u := range m.undo {
		if u.vt == vt && u.rid == rid && u.inserted {
			m.undo = append(m.undo[:i], m.undo[i+1:]...)
			return
		}
	}
}

// UpdateWhere applies a logical update to every current-version tuple
// satisfying pred, cursor-style (§4.2.2): matching RIDs are collected
// first, then each tuple is re-read and folded individually. set receives
// the current base tuple and returns the new one.
func (m *Maintenance) UpdateWhere(tableName string, pred func(catalog.Tuple) bool, set func(catalog.Tuple) catalog.Tuple) (int, error) {
	if err := m.checkActive(); err != nil {
		return 0, err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return 0, err
	}
	rids := m.cursorSelect(vt, pred)
	n := 0
	for _, rid := range rids {
		ext, err := vt.tbl.Get(rid)
		if err != nil {
			continue
		}
		cur, visible := vt.ext.CurrentVersion(ext)
		if !visible || (pred != nil && !pred(cur)) {
			continue
		}
		if err := m.applyUpdate(vt, rid, ext, set(cur.Clone())); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// DeleteWhere applies a logical delete to every current-version tuple
// satisfying pred, cursor-style (§4.2.3).
func (m *Maintenance) DeleteWhere(tableName string, pred func(catalog.Tuple) bool) (int, error) {
	if err := m.checkActive(); err != nil {
		return 0, err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return 0, err
	}
	rids := m.cursorSelect(vt, pred)
	n := 0
	for _, rid := range rids {
		ext, err := vt.tbl.Get(rid)
		if err != nil {
			continue
		}
		cur, visible := vt.ext.CurrentVersion(ext)
		if !visible || (pred != nil && !pred(cur)) {
			continue
		}
		if err := m.applyDelete(vt, rid, ext); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// UpdateKey updates the single tuple with the given unique key. It reports
// whether a live tuple with that key existed.
func (m *Maintenance) UpdateKey(tableName string, key catalog.Tuple, set func(catalog.Tuple) catalog.Tuple) (bool, error) {
	if err := m.checkActive(); err != nil {
		return false, err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return false, err
	}
	rid, ok := vt.tbl.SearchKey(key)
	if !ok {
		return false, nil
	}
	ext, err := vt.tbl.Get(rid)
	if err != nil {
		return false, nil
	}
	cur, visible := vt.ext.CurrentVersion(ext)
	if !visible {
		return false, nil
	}
	return true, m.applyUpdate(vt, rid, ext, set(cur.Clone()))
}

// DeleteKey logically deletes the tuple with the given unique key. It
// reports whether a live tuple with that key existed.
func (m *Maintenance) DeleteKey(tableName string, key catalog.Tuple) (bool, error) {
	if err := m.checkActive(); err != nil {
		return false, err
	}
	vt, err := m.table(tableName)
	if err != nil {
		return false, err
	}
	rid, ok := vt.tbl.SearchKey(key)
	if !ok {
		return false, nil
	}
	ext, err := vt.tbl.Get(rid)
	if err != nil {
		return false, nil
	}
	if _, visible := vt.ext.CurrentVersion(ext); !visible {
		return false, nil
	}
	return true, m.applyDelete(vt, rid, ext)
}

// GetCurrent returns the current version of the tuple with the given key,
// as the maintenance transaction sees it (first row of Table 1).
func (m *Maintenance) GetCurrent(tableName string, key catalog.Tuple) (catalog.Tuple, bool, error) {
	vt, err := m.table(tableName)
	if err != nil {
		return nil, false, err
	}
	rid, ok := vt.tbl.SearchKey(key)
	if !ok {
		return nil, false, nil
	}
	ext, err := vt.tbl.Get(rid)
	if err != nil {
		return nil, false, nil
	}
	cur, visible := vt.ext.CurrentVersion(ext)
	return cur, visible, nil
}

// cursorSelect collects the RIDs of current-version-visible tuples
// matching pred, without holding any latch across the whole scan.
func (m *Maintenance) cursorSelect(vt *VTable, pred func(catalog.Tuple) bool) []storage.RID {
	var rids []storage.RID
	vt.tbl.Scan(func(rid storage.RID, t catalog.Tuple) bool {
		cur, visible := vt.ext.CurrentVersion(t)
		if !visible {
			return true
		}
		if pred == nil || pred(cur) {
			rids = append(rids, rid)
		}
		return true
	})
	return rids
}

// Query runs a SELECT as the maintenance transaction: the reader rewrite
// with sessionVN bound to maintenanceVN, so the transaction reads the
// latest version of every tuple including its own uncommitted changes
// (§3.3).
func (m *Maintenance) Query(text string, params exec.Params) (*exec.Rows, error) {
	if err := m.checkActive(); err != nil {
		return nil, err
	}
	sel, err := sql.ParseSelect(text)
	if err != nil {
		return nil, err
	}
	rw, err := RewriteSelect(m.store, sel)
	if err != nil {
		return nil, err
	}
	return exec.Select(queryCatalog{m.store}, rw, withSessionVN(params, m.vn))
}

// Exec parses and applies a maintenance DML statement — INSERT, UPDATE, or
// DELETE over a base schema — by rewriting it into the cursor loops of
// §4.2. Returns the number of logical rows affected.
func (m *Maintenance) Exec(text string, params exec.Params) (int, error) {
	if err := m.checkActive(); err != nil {
		return 0, err
	}
	stmt, err := sql.Parse(text)
	if err != nil {
		return 0, err
	}
	switch st := stmt.(type) {
	case *sql.InsertStmt:
		return m.execInsert(st, params)
	case *sql.UpdateStmt:
		return m.execUpdate(st, params)
	case *sql.DeleteStmt:
		return m.execDelete(st, params)
	default:
		return 0, fmt.Errorf("core: maintenance cannot execute %T", stmt)
	}
}

func (m *Maintenance) execInsert(st *sql.InsertStmt, params exec.Params) (int, error) {
	vt, err := m.table(st.Table)
	if err != nil {
		return 0, err
	}
	base := vt.ext.Base
	colIdx := make([]int, 0, len(st.Columns))
	if st.Columns == nil {
		for i := range base.Columns {
			colIdx = append(colIdx, i)
		}
	} else {
		for _, name := range st.Columns {
			idx := base.ColIndex(name)
			if idx < 0 {
				return 0, fmt.Errorf("core: table %q has no column %q", st.Table, name)
			}
			colIdx = append(colIdx, idx)
		}
	}
	n := 0
	for _, row := range st.Rows {
		if len(row) != len(colIdx) {
			return n, fmt.Errorf("core: INSERT row has %d values for %d columns", len(row), len(colIdx))
		}
		t := make(catalog.Tuple, len(base.Columns))
		for i := range t {
			t[i] = catalog.Null
		}
		for i, e := range row {
			v, err := exec.EvalConst(e, params)
			if err != nil {
				return n, err
			}
			t[colIdx[i]] = v
		}
		if err := m.Insert(st.Table, t); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

func (m *Maintenance) execUpdate(st *sql.UpdateStmt, params exec.Params) (int, error) {
	vt, err := m.table(st.Table)
	if err != nil {
		return 0, err
	}
	base := vt.ext.Base
	setIdx := make([]int, len(st.Sets))
	for i, set := range st.Sets {
		idx := base.ColIndex(set.Column)
		if idx < 0 {
			return 0, fmt.Errorf("core: table %q has no column %q", st.Table, set.Column)
		}
		setIdx[i] = idx
	}
	ev := exec.NewRowEval(st.Table, base, params)
	pred := func(cur catalog.Tuple) bool {
		if st.Where == nil {
			return true
		}
		ok, err := ev.Truthy(st.Where, cur)
		return err == nil && ok
	}
	var evalErr error
	n, err := m.UpdateWhere(st.Table, pred, func(cur catalog.Tuple) catalog.Tuple {
		out := cur.Clone()
		for i, set := range st.Sets {
			v, err := ev.Value(set.Expr, cur)
			if err != nil {
				evalErr = err
				return out
			}
			out[setIdx[i]] = v
		}
		return out
	})
	if evalErr != nil {
		return n, evalErr
	}
	return n, err
}

func (m *Maintenance) execDelete(st *sql.DeleteStmt, params exec.Params) (int, error) {
	vt, err := m.table(st.Table)
	if err != nil {
		return 0, err
	}
	ev := exec.NewRowEval(st.Table, vt.ext.Base, params)
	return m.DeleteWhere(st.Table, func(cur catalog.Tuple) bool {
		if st.Where == nil {
			return true
		}
		ok, err := ev.Truthy(st.Where, cur)
		return err == nil && ok
	})
}

// Commit installs the transaction's version: currentVN ← maintenanceVN and
// maintenanceActive ← false, under the global latch (§3). (The paper notes
// that in a pure SQL deployment the Version-relation update should run as
// its own tiny transaction immediately after the maintenance commit so an
// abort never exposes a half-installed version; with the latched update
// here the installation is atomic.)
func (m *Maintenance) Commit() error {
	if err := m.checkActive(); err != nil {
		return err
	}
	start := time.Now()
	s := m.store
	if j := s.journalOrNil(); j != nil {
		// Write-ahead rule: the commit record is durable before the new
		// version becomes visible.
		if err := j.LogCommit(m.vn); err != nil {
			return fmt.Errorf("core: commit journal: %w", err)
		}
	}
	// Install under the latch, retrying transient failures per the
	// store's policy. The latch is released for every backoff — readers
	// and the Version relation stay available while the install waits —
	// and reacquired for the next attempt.
	for attempt := 0; ; attempt++ {
		acquired := s.latchAcquire()
		err := s.setGlobalsLocked(m.vn, false)
		if err == nil {
			s.finishCommitLocked(m)
			s.latchRelease(acquired)
			break
		}
		s.latchRelease(acquired)
		if attempt+1 >= s.commitRetry.Attempts {
			// Nothing was installed: the transaction stays active, so
			// the caller can retry Commit or fall back to Rollback
			// rather than run against a version state diverged from the
			// relation.
			return fmt.Errorf("core: installing version %d: %w", m.vn, err)
		}
		s.metrics.commitRetries.Inc()
		s.commitRetry.Wait(attempt)
	}
	mm := s.metrics
	mm.commitNS.ObserveSince(start)
	mm.txnNS.ObserveSince(m.began)
	mm.maintCommits.Inc()
	mm.vnAdvances.Inc()
	mm.currentVN.Set(int64(m.vn))
	mm.maintActive.Set(0)
	phys := int64(m.stats.PhysicalInserts + m.stats.PhysicalUpdates + m.stats.PhysicalDeletes)
	mm.trace(TraceMaintCommit, m.vn, phys)
	mm.trace(TraceVNAdvance, m.vn, 0)
	return nil
}

// finishCommitLocked retires the installed transaction's bookkeeping.
// Caller holds the latch.
func (s *Store) finishCommitLocked(m *Maintenance) {
	m.done = true
	m.undo = nil
	s.maint = nil
}

// Rollback aborts the transaction and reverts every touched tuple to its
// pre-transaction state.
//
// In RollbackUndoLog mode the recorded bookkeeping images are restored
// exactly and no reader is affected.
//
// In RollbackLogless mode (§7) the revert uses only the version
// information inside each tuple: physically-inserted tuples are deleted,
// and modified tuples have their current values restored from the slot-1
// pre-update attributes, with slot 1 rewritten as (currentVN, update) — or
// (currentVN, delete) when the tuple was logically deleted before this
// transaction touched it. Because the aborted transaction consumed the
// slot-1 pre-update version, sessions older than currentVN can no longer be
// served and are expired, exactly as they would have been had the
// transaction committed and a new one begun.
func (m *Maintenance) Rollback() error {
	if err := m.checkActive(); err != nil {
		return err
	}
	start := time.Now()
	s := m.store
	if j := s.journalOrNil(); j != nil {
		j.LogAbort(m.vn)
	}
	if m.mode == RollbackUndoLog {
		// Reverse order restores first-touch images last, which is
		// correct because there is at most one record per tuple.
		touched := make(map[*VTable]bool)
		for i := len(m.undo) - 1; i >= 0; i-- {
			u := m.undo[i]
			touched[u.vt] = true
			if u.inserted {
				_ = u.vt.tbl.Delete(u.rid)
				continue
			}
			if err := u.vt.tbl.Update(u.rid, u.image); err != nil {
				return fmt.Errorf("core: rollback: %w", err)
			}
		}
		// Restored images lowered slot version numbers back below
		// maintenanceVN; rebuild the per-table watermarks so the
		// per-tuple expiration probe does not falsely expire sessions
		// this rollback was supposed to spare.
		for vt := range touched {
			vt.recomputeOldestHW()
		}
	} else {
		cur := s.CurrentVN()
		// Raise the expiration floor before touching any tuple: the
		// revert consumes the slot-1 pre-update versions, so a reader
		// older than currentVN that raced the revert must already see
		// itself expired by its post-query check rather than return
		// values from a half-reverted state.
		s.mu.Lock()
		if s.expireFloor < cur {
			s.expireFloor = cur
			s.publishLocked()
		}
		s.mu.Unlock()
		// Physically-inserted tuples are simply deleted (their records are
		// kept in both modes); everything else reverts from in-tuple
		// version information.
		for i := len(m.undo) - 1; i >= 0; i-- {
			if m.undo[i].inserted {
				_ = m.undo[i].vt.tbl.Delete(m.undo[i].rid)
			}
		}
		for _, vt := range s.Tables() {
			if err := m.rollbackTableLogless(vt, cur); err != nil {
				return err
			}
			vt.recomputeOldestHW()
		}
	}
	acquired := s.latchAcquire()
	curVN, _ := s.globalsLocked()
	if err := s.setGlobalsLocked(curVN, false); err != nil {
		s.latchRelease(acquired)
		return fmt.Errorf("core: clearing maintenanceActive: %w", err)
	}
	m.done = true
	m.undo = nil
	s.maint = nil
	s.latchRelease(acquired)
	mm := s.metrics
	mm.rollbackNS.ObserveSince(start)
	mm.txnNS.ObserveSince(m.began)
	mm.maintRollbacks.Inc()
	mm.maintActive.Set(0)
	mm.trace(TraceMaintRollback, m.vn, 0)
	return nil
}

// rollbackTableLogless reverts every tuple the transaction touched in one
// table using only in-tuple information: the previous version is extracted
// as of currentVN (the paper's §7 observation that modified tuples contain
// enough information to recover their previous version).
func (m *Maintenance) rollbackTableLogless(vt *VTable, cur VN) error {
	e := vt.ext
	var touched []storage.RID
	vt.tbl.Scan(func(rid storage.RID, t catalog.Tuple) bool {
		if e.TupleVN(t, 1) == m.vn {
			touched = append(touched, rid)
		}
		return true
	})
	for _, rid := range touched {
		t, err := vt.tbl.Get(rid)
		if err != nil {
			continue // a physically-inserted tuple already removed above
		}
		prev, visible, err := e.ReadAsOf(t, cur)
		if err != nil {
			return fmt.Errorf("core: logless rollback cannot reconstruct version %d: %w", cur, err)
		}
		nt := t.Clone()
		if visible {
			// The tuple existed at cur: restore those values as current.
			e.SetBaseValues(nt, prev)
			e.SetSlot(nt, 1, cur, OpUpdate)
		} else {
			// The tuple was logically deleted at cur (this transaction
			// re-inserted over a deleted tuple): restore the delete
			// marker so the key stays reserved for conflict detection.
			e.SetSlot(nt, 1, cur, OpDelete)
		}
		// The slot-1 pre-update values were consumed by the aborted
		// transaction; leave them equal to the restored current values.
		// Sessions older than cur are expired by the store, so nothing
		// ever reads them.
		e.SetPreValues(nt, 1, e.CurrentUpd(nt))
		if err := vt.tbl.Update(rid, nt); err != nil {
			return err
		}
	}
	return nil
}
