package core

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/catalog"
)

// Deterministic-schedule tests: the batchPartStart/batchPartDone seams
// force specific worker interleavings — partition A entirely before B, and
// the reverse — and pin that commit-point atomicity (§3: readers never see
// uncommitted maintenance writes) and the latch discipline (workers never
// hold the global-variable latch) hold under every ordering.

// schedBatch builds a batch guaranteed to put at least minPer deltas in
// each of two partitions, returning the batch and the per-partition counts.
func schedBatch(t *testing.T, s *Store, minPer int) []Delta {
	t.Helper()
	vt, err := s.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	var deltas []Delta
	for k := int64(100); counts[0] < minPer || counts[1] < minPer; k++ {
		d := Delta{Table: "kv", Op: DeltaInsert, Row: kvTuple(k, k*10)}
		p, err := partitionOf(vt, d, len(deltas), 2)
		if err != nil {
			t.Fatal(err)
		}
		if counts[p] >= minPer {
			continue
		}
		counts[p]++
		deltas = append(deltas, d)
	}
	return deltas
}

// runSchedule applies the batch on two workers with partition `first`
// forced to finish before partition 1-first starts. While the second
// partition is still gated, the mid hook runs on the test goroutine: it
// checks commit-point atomicity (pre-batch session and a fresh session both
// see the untouched state) and that the §3 latch is free.
func runSchedule(t *testing.T, first int, preRows int) []string {
	t.Helper()
	s, _ := diffStore(t, 2)
	deltas := schedBatch(t, s, 3)
	old := s.BeginSession()
	defer old.Close()

	m := mustMaint(t, s)
	second := 1 - first
	gate := make(chan struct{})
	mid := make(chan struct{})
	release := make(chan struct{})
	m.batchPartStart = func(p int) {
		if p == second {
			<-gate
		}
	}
	m.batchPartDone = func(p int) {
		if p == first {
			close(mid)
			<-release
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.ApplyBatchWorkers(deltas, 2)
		done <- err
	}()
	<-mid
	// Partition `first` has fully applied; partition `second` has not
	// started. Readers must be unaffected: the batch is uncommitted, so
	// both the spanning session and a brand-new one see the pre-batch
	// state.
	if got := len(dumpSession(t, old)); got != preRows {
		t.Fatalf("first=%d: mid-batch spanning session sees %d rows, want pre-batch %d", first, got, preRows)
	}
	fresh := s.BeginSession()
	if got := len(dumpSession(t, fresh)); got != preRows {
		t.Fatalf("first=%d: mid-batch fresh session sees %d rows, want pre-batch %d", first, got, preRows)
	}
	fresh.Close()
	// §3 latch discipline: no worker holds the global-variable latch while
	// applying — the latch must be immediately acquirable mid-batch.
	if !s.mu.TryLock() {
		t.Fatalf("first=%d: global-variable latch held by a batch worker", first)
	}
	s.mu.Unlock()
	close(gate)
	close(release)
	if err := <-done; err != nil {
		t.Fatalf("first=%d: ApplyBatchWorkers: %v", first, err)
	}
	commit(t, m)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("first=%d: %v", first, err)
	}
	return dumpPhysical(t, s)
}

func TestBatchScheduleBothOrderings(t *testing.T) {
	s, _ := diffStore(t, 2)
	pre := s.BeginSession()
	preRows := len(dumpSession(t, pre))
	pre.Close()

	aFirst := runSchedule(t, 0, preRows)
	bFirst := runSchedule(t, 1, preRows)
	compareDump(t, "physical tuples across orderings", aFirst, bFirst)

	// And both orderings must match the sequential oracle.
	s2, _ := diffStore(t, 2)
	deltas := schedBatch(t, s2, 3)
	m := mustMaint(t, s2)
	if _, err := m.ApplyBatchSeq(deltas); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	compareDump(t, "physical tuples vs oracle", dumpPhysical(t, s2), aFirst)
}

// TestBatchErrorPoisonsTransaction: a failing delta in a parallel batch
// must poison the transaction — Commit refuses, further batches refuse —
// and Rollback must restore the exact pre-batch state even though other
// partitions kept applying concurrently.
func TestBatchErrorPoisonsTransaction(t *testing.T) {
	s, _ := diffStore(t, 2)
	before := dumpPhysical(t, s)

	m := mustMaint(t, s)
	deltas := schedBatch(t, s, 4)
	// Insert of a live key is the one illegal batch operation; plant it
	// mid-batch so workers are mid-flight when it fires.
	deltas[len(deltas)/2] = Delta{Table: "kv", Op: DeltaInsert, Row: kvTuple(0, 999)}
	if _, err := m.ApplyBatchWorkers(deltas, 2); !errors.Is(err, ErrInvalidMaintenanceOp) {
		t.Fatalf("poisoning batch: err = %v, want ErrInvalidMaintenanceOp", err)
	}
	if err := m.Commit(); err == nil || !errors.Is(err, ErrInvalidMaintenanceOp) {
		t.Fatalf("Commit after poisoned batch: err = %v, want refusal wrapping ErrInvalidMaintenanceOp", err)
	}
	if _, err := m.ApplyBatch(nil); err == nil {
		t.Fatal("ApplyBatch after poisoned batch succeeded")
	}
	if err := m.Rollback(); err != nil {
		t.Fatalf("Rollback after poisoned batch: %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	compareDump(t, "physical tuples after poisoned rollback", before, dumpPhysical(t, s))
	// The store must be fully usable again.
	m2 := mustMaint(t, s)
	if _, err := m2.ApplyBatchWorkers(schedBatch(t, s, 2), 2); err != nil {
		t.Fatalf("batch after recovery from poison: %v", err)
	}
	commit(t, m2)
}

// TestBatchWorkerPanicPropagates: a panic on a worker goroutine (the fault
// harness's crash points unwind this way) must resurface on the caller's
// goroutine with the original value, after every worker has joined.
func TestBatchWorkerPanicPropagates(t *testing.T) {
	s, _ := diffStore(t, 2)
	m := mustMaint(t, s)
	sentinel := fmt.Errorf("injected crash")
	m.batchPartStart = func(p int) {
		if p == 1 {
			panic(sentinel)
		}
	}
	deltas := schedBatch(t, s, 2)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic did not propagate to the caller")
		}
		if r != sentinel {
			t.Fatalf("panic value = %v, want the original sentinel", r)
		}
		// The pool joined before re-panicking, so the transaction is still
		// coherent and can roll back.
		if err := m.Rollback(); err != nil {
			t.Fatalf("Rollback after worker panic: %v", err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}()
	_, _ = m.ApplyBatchWorkers(deltas, 2)
}

// TestBatchKeylessRules: keyless tables accept batched inserts (spread
// round-robin) but reject batched updates/deletes, which have no key to
// route by.
func TestBatchKeylessRules(t *testing.T) {
	s := newStore(t, 2)
	schema := catalog.MustSchema("plain", []catalog.Column{
		{Name: "a", Type: catalog.TypeInt, Length: 8},
		{Name: "b", Type: catalog.TypeInt, Length: 8, Updatable: true},
	})
	if _, err := s.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	var deltas []Delta
	for i := int64(0); i < 16; i++ {
		deltas = append(deltas, Delta{Table: "plain", Op: DeltaInsert, Row: kvTuple(i, i)})
	}
	st, err := m.ApplyBatchWorkers(deltas, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Applied != 16 {
		t.Fatalf("applied %d keyless inserts, want 16", st.Applied)
	}
	if _, err := m.ApplyBatchWorkers([]Delta{{Table: "plain", Op: DeltaDelete, Key: kvTuple(1, 1)}}, 2); err == nil {
		t.Fatal("batched delete of keyless table succeeded")
	}
	// The routing rejection happens before any application: the
	// transaction is not poisoned.
	commit(t, m)
	vt, _ := s.Table("plain")
	if vt.Len() != 16 {
		t.Fatalf("keyless table has %d tuples, want 16", vt.Len())
	}
}
