package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sql"
	"repro/internal/storage"
)

// Session is a reader session (§1): a sequence of queries that must all
// observe the same consistent database state. The session captures
// sessionVN = currentVN when it begins and reads that version — without
// placing any locks — until it is closed or expires.
//
// A Session is safe for concurrent use by multiple goroutines: the mutable
// state (closed, expiredSeen) is atomic, and the steady-state query path
// takes no mutex at all.
type Session struct {
	store    *Store
	vn       VN
	perTuple bool
	// shard is the session-registry stripe this session registered in.
	shard int
	// closed flips once, via CompareAndSwap, so concurrent Close calls
	// and in-flight queries race benignly.
	closed atomic.Bool
	// expiredSeen dedupes the expiry metric and trace event: a session is
	// counted expired once, on the first failing check, however many
	// queries observe the error afterwards.
	expiredSeen atomic.Bool
	// midQueryHook, when non-nil, runs after execution and before the
	// post-query expiration check (test seam: it lets tests advance the
	// version mid-query deterministically).
	midQueryHook func()
}

// BeginSession starts a reader session at the current database version. In
// relation-backed mode this reads the Version relation, as the paper's
// deployment does (§4). Expiration uses the global pessimistic check of
// §4.1.
func (s *Store) BeginSession() *Session {
	return s.beginSession(false)
}

// BeginSessionPerTupleExpiry starts a session using §3.2's first,
// optimistic expiration alternative: instead of the global currentVN
// comparison, each query is followed by a per-table probe for tuples whose
// oldest reconstructible version postdates the session (tupleVN(n−1) >
// sessionVN + 1). A session only expires when such a tuple actually exists
// in a table it queries, so sessions reading cold data outlive the global
// check's bound. (The paper notes true read-set detection "cannot always be
// implemented by query rewrite"; this per-table probe is the rewrite-
// implementable form.)
func (s *Store) BeginSessionPerTupleExpiry() *Session {
	return s.beginSession(true)
}

func (s *Store) beginSession(perTuple bool) *Session {
	sess := &Session{store: s, perTuple: perTuple}
	sess.shard = int(s.sessions.next.Add(1) % sessionShards)
	// Register at a version consistent with the published snapshot: if a
	// publish (commit/rollback) raced between reading the globals and
	// registering, the floor computations (GC, commit-when-quiet) could
	// have missed this session at its stale version — re-read and retry.
	// Publishes are rare (one per maintenance transaction), so the loop
	// settles immediately in steady state. The retries are bounded: under
	// pathological churn (a maintenance loop committing faster than a
	// reader can register, which the stress harness produces on a single
	// CPU) the optimistic loop would otherwise livelock, so after a few
	// failed attempts the session registers under the latch, which
	// excludes publishers entirely.
	const optimisticRetries = 4
	registered := false
	for attempt := 0; attempt < optimisticRetries; attempt++ {
		snap := s.snap.Load()
		vn, _, _ := s.readGlobals()
		sess.vn = vn
		s.sessions.add(sess)
		if s.snap.Load() == snap {
			registered = true
			break
		}
		s.sessions.remove(sess)
	}
	if !registered {
		acquired := s.latchAcquire()
		vn, _ := s.globalsLocked()
		sess.vn = vn
		s.sessions.add(sess)
		s.latchRelease(acquired)
	}
	m := s.metrics
	m.sessionsBegun.Inc()
	m.activeSessions.Add(1)
	m.trace(TraceSessionBegin, sess.vn, 0)
	return sess
}

// BeginSessionAt starts a reader session pinned at vn rather than at the
// store's currentVN. The shard router uses it to pin one published
// cross-shard epoch on every shard: between a two-phase publish's per-shard
// commits and the global epoch flip a shard's currentVN runs one ahead of
// the epoch, and the session must land on the epoch — the shard's nVNL
// back-versions reconstruct it.
//
// The pinned version must be servable: no newer than currentVN, no older
// than the expiry floor, and inside the n-version reconstruction window. If
// a concurrent publish moved the window past vn between the caller loading
// its epoch and registering here, BeginSessionAt registers nothing and
// returns ErrSessionExpired; callers reload their epoch and retry. The
// session registers before the window is validated — the same ordering
// discipline as beginSession's optimistic loop — so the GC and
// commit-when-quiet floors can never miss a session that passed the check.
func (s *Store) BeginSessionAt(vn VN) (*Session, error) {
	sess := &Session{store: s, vn: vn}
	sess.shard = int(s.sessions.next.Add(1) % sessionShards)
	s.sessions.add(sess)
	cur, active, floor := s.readGlobals()
	bad := vn > cur || vn < floor || vn < 1
	if !bad {
		n := VN(s.n)
		if active {
			bad = vn < cur+2-n
		} else {
			bad = vn < cur+1-n
		}
	}
	if bad {
		s.sessions.remove(sess)
		return nil, ErrSessionExpired
	}
	m := s.metrics
	m.sessionsBegun.Inc()
	m.activeSessions.Add(1)
	m.trace(TraceSessionBegin, sess.vn, 0)
	return sess, nil
}

// VN returns the session's database version.
func (sess *Session) VN() VN { return sess.vn }

// Close ends the session, releasing it from the store's registry (the
// garbage collector and the commit-when-quiet policy consult that
// registry). Closing twice — or from several goroutines at once — is a
// no-op after the first call.
func (sess *Session) Close() {
	if !sess.closed.CompareAndSwap(false, true) {
		return
	}
	st := sess.store
	st.sessions.remove(sess)
	st.metrics.sessionsClosed.Inc()
	st.metrics.activeSessions.Add(-1)
	st.metrics.trace(TraceSessionClose, sess.vn, 0)
}

// markExpired records the session's expiry — once, however many queries
// observe the error afterwards — and returns ErrSessionExpired.
func (sess *Session) markExpired() error {
	if sess.expiredSeen.CompareAndSwap(false, true) {
		sess.store.metrics.sessionsExpired.Inc()
		sess.store.metrics.trace(TraceSessionExpired, sess.vn, 0)
	}
	return ErrSessionExpired
}

// Check performs the global, pessimistic expiration test of §3.2/§4.1: the
// session is live iff it could not possibly have overlapped more than n−1
// maintenance transactions. For 2VNL the condition is the paper's
//
//	(sessionVN = currentVN) OR
//	(sessionVN = currentVN−1 AND maintenanceActive = false)
//
// generalized for nVNL. It returns nil, ErrSessionExpired, or
// ErrSessionClosed. The check is lock-free: one atomic snapshot load
// replaces the paper's latched read of the global variables.
func (sess *Session) Check() error {
	if sess.closed.Load() {
		return ErrSessionClosed
	}
	st := sess.store
	cur, active, floor := st.readGlobals()
	if sess.vn < floor {
		// A logless rollback invalidated older sessions (see
		// Maintenance.Rollback).
		return sess.markExpired()
	}
	if sess.perTuple {
		// Optimistic discipline: expired only if some table actually holds
		// a tuple this session cannot reconstruct. The probe reads each
		// table's oldest-slot high-water mark — O(1) per table.
		for _, vt := range st.Tables() {
			if vt.hasUnreconstructible(sess.vn) {
				return sess.markExpired()
			}
		}
		return nil
	}
	n := VN(st.n)
	if active {
		if sess.vn < cur+2-n {
			return sess.markExpired()
		}
	} else {
		if sess.vn < cur+1-n {
			return sess.markExpired()
		}
	}
	return nil
}

// Expired reports whether the global check fails.
func (sess *Session) Expired() bool { return sess.Check() != nil }

// Query parses text, applies the 2VNL reader rewrite (§4.1), and executes
// it at the session's version. The global expiration check runs before and
// after execution, so a session that silently expired mid-query (a second
// maintenance transaction began) reports ErrSessionExpired rather than
// returning an inconsistent result.
//
// When the store's plan cache is enabled (the default), a repeated query
// text skips the parser, the rewrite derivation, and expression compilation
// entirely: the cache is probed with the raw text before anything else, and
// validity is one table-registry pointer comparison.
func (sess *Session) Query(text string, params exec.Params) (*exec.Rows, error) {
	st := sess.store
	if st.plans != nil {
		if e := st.plans.get(text, st.tables.Load()); e != nil {
			st.metrics.planHits.Inc()
			return sess.queryEntry(e, params)
		}
	}
	sel, err := sql.ParseSelect(text)
	if err != nil {
		return nil, err
	}
	return sess.queryKeyed(sel, text, params)
}

// QueryStmt is Query over a pre-parsed statement. The input is not
// mutated. On the steady-state path this performs zero mutex
// acquisitions: both checks load the published snapshot, table resolution
// is an atomic registry load, and the plan cache (keyed here by the
// statement's canonical printed form) is a read-locked map probe.
func (sess *Session) QueryStmt(sel *sql.SelectStmt, params exec.Params) (*exec.Rows, error) {
	return sess.queryKeyed(sel, "", params)
}

// queryKeyed executes sel through the plan cache when enabled (raw, when
// non-empty, is the original text and becomes a second cache key), else
// through the per-call rewrite path.
func (sess *Session) queryKeyed(sel *sql.SelectStmt, raw string, params exec.Params) (*exec.Rows, error) {
	st := sess.store
	if st.plans != nil {
		e, err := st.selectPlan(sel, raw)
		if err != nil {
			return nil, err
		}
		return sess.queryEntry(e, params)
	}
	if sess.perTuple {
		return sess.queryPerTuple(sel, params)
	}
	if err := sess.Check(); err != nil {
		return nil, err
	}
	rw, err := RewriteSelect(st, sel)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Select(queryCatalog{st}, rw, withSessionVN(params, sess.vn))
	if err != nil {
		return nil, err
	}
	if sess.midQueryHook != nil {
		sess.midQueryHook()
	}
	if err := sess.Check(); err != nil {
		return nil, err
	}
	return rows, nil
}

// queryEntry runs a cached plan under the session's expiration discipline —
// the same check-execute-check (or execute-probe) shape as the uncached
// paths.
func (sess *Session) queryEntry(e *planEntry, params exec.Params) (*exec.Rows, error) {
	if sess.perTuple {
		return sess.queryEntryPerTuple(e, params)
	}
	if err := sess.Check(); err != nil {
		return nil, err
	}
	rows, err := sess.executePlan(e, withSessionVN(params, sess.vn))
	if err != nil {
		return nil, err
	}
	if sess.midQueryHook != nil {
		sess.midQueryHook()
	}
	if err := sess.Check(); err != nil {
		return nil, err
	}
	return rows, nil
}

// executePlan runs a cached plan, recovering from the rare stale-plan race:
// the table registry can flip between cache validation and execution (e.g.
// AdoptTable replacing the table mid-flight), which the plan detects by
// schema-pointer comparison. Recovery re-derives against the current
// registry instead of failing the query; the stale cache entry dies on its
// next lookup.
func (sess *Session) executePlan(e *planEntry, params exec.Params) (*exec.Rows, error) {
	st := sess.store
	rows, err := e.plan.Execute(queryCatalog{st}, params)
	if err != nil && errors.Is(err, exec.ErrPlanStale) {
		rw, rerr := RewriteSelect(st, e.src)
		if rerr != nil {
			return nil, rerr
		}
		return exec.Select(queryCatalog{st}, rw, params)
	}
	return rows, err
}

// queryEntryPerTuple is queryEntry under §3.2's optimistic expiration
// alternative, mirroring queryPerTuple.
func (sess *Session) queryEntryPerTuple(e *planEntry, params exec.Params) (*exec.Rows, error) {
	if sess.closed.Load() {
		return nil, ErrSessionClosed
	}
	_, _, floor := sess.store.readGlobals()
	if sess.vn < floor {
		return nil, sess.markExpired()
	}
	rows, err := sess.executePlan(e, withSessionVN(params, sess.vn))
	if err != nil {
		return nil, err
	}
	if sess.midQueryHook != nil {
		sess.midQueryHook()
	}
	for _, tr := range e.src.From {
		vt := sess.store.lookup(tr.Table)
		if vt == nil {
			continue
		}
		if vt.hasUnreconstructible(sess.vn) {
			return nil, sess.markExpired()
		}
	}
	return rows, nil
}

// queryPerTuple executes with the optimistic expiration discipline: run the
// rewritten query, then probe each versioned table it touched for tuples
// the session can no longer reconstruct. Unreconstructibility is monotone
// (tuple version numbers only grow), so a clean probe after the query
// implies the whole execution read reconstructible tuples.
func (sess *Session) queryPerTuple(sel *sql.SelectStmt, params exec.Params) (*exec.Rows, error) {
	if sess.closed.Load() {
		return nil, ErrSessionClosed
	}
	_, _, floor := sess.store.readGlobals()
	if sess.vn < floor {
		return nil, sess.markExpired()
	}
	rw, err := RewriteSelect(sess.store, sel)
	if err != nil {
		return nil, err
	}
	rows, err := exec.Select(queryCatalog{sess.store}, rw, withSessionVN(params, sess.vn))
	if err != nil {
		return nil, err
	}
	if sess.midQueryHook != nil {
		sess.midQueryHook()
	}
	for _, tr := range sel.From {
		vt := sess.store.lookup(tr.Table)
		if vt == nil {
			continue
		}
		if vt.hasUnreconstructible(sess.vn) {
			return nil, sess.markExpired()
		}
	}
	return rows, nil
}

// hasUnreconstructible reports whether any tuple's oldest recorded
// modification postdates what a session at vn can reconstruct:
// tupleVN(n−1) > vn + 1 (unused slots hold 0 and never trigger). The probe
// reads the table's maintained high-water mark — one atomic load — instead
// of scanning; scanUnreconstructible below is the full-scan oracle the
// equivalence tests pin it against.
func (v *VTable) hasUnreconstructible(vn VN) bool {
	return VN(v.oldestHW.Load()) > vn+1
}

// scanUnreconstructible is the original full-scan form of the per-tuple
// expiration probe, kept as the oracle for oldestHW.
func (v *VTable) scanUnreconstructible(vn VN) bool {
	e := v.ext
	oldest := e.L.N - 1
	found := false
	v.tbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		if e.TupleVN(t, oldest) > vn+1 {
			found = true
			return false
		}
		return true
	})
	return found
}

// Rewrite returns the SQL text of the rewritten form of a query, as the
// paper presents in Example 4.1 — CASE expressions around updatable
// attributes and the version predicate in WHERE. It does not execute
// anything.
func (sess *Session) Rewrite(text string) (string, error) {
	sel, err := sql.ParseSelect(text)
	if err != nil {
		return "", err
	}
	rw, err := RewriteSelect(sess.store, sel)
	if err != nil {
		return "", err
	}
	return sql.Print(rw), nil
}

// Scan iterates the named versioned relation at the session's version,
// calling fn with each visible base-schema tuple. Unlike the SQL path, Scan
// performs the per-tuple expiration detection of §3.2: touching a tuple
// whose oldest reconstructible version postdates the session returns
// ErrSessionExpired immediately.
func (sess *Session) Scan(table string, fn func(catalog.Tuple) bool) error {
	if err := sess.Check(); err != nil {
		return err
	}
	vt, err := sess.store.Table(table)
	if err != nil {
		return err
	}
	var scanErr error
	vt.tbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		base, visible, err := vt.ext.ReadAsOf(t, sess.vn)
		if err != nil {
			scanErr = err
			return false
		}
		if !visible {
			return true
		}
		return fn(base)
	})
	if scanErr == ErrSessionExpired {
		return sess.markExpired()
	}
	return scanErr
}

// Get returns the tuple with the given unique key as of the session's
// version. visible is false when the tuple does not exist in that version.
func (sess *Session) Get(table string, key catalog.Tuple) (t catalog.Tuple, visible bool, err error) {
	if err := sess.Check(); err != nil {
		return nil, false, err
	}
	vt, err := sess.store.Table(table)
	if err != nil {
		return nil, false, err
	}
	rid, ok := vt.tbl.SearchKey(key)
	if !ok {
		return nil, false, nil
	}
	ext, err := vt.tbl.Get(rid)
	if err != nil {
		if errors.Is(err, storage.ErrNoSuchTuple) {
			if _, still := vt.tbl.SearchKey(key); !still {
				// The tuple was physically reclaimed between the index
				// probe and the heap read (GC or a net-effect delete
				// racing this reader): the key is genuinely gone, not
				// corrupt.
				return nil, false, nil
			}
		}
		// Anything else — including an index entry pointing at a missing
		// tuple — is storage corruption or an I/O failure and must not be
		// masked as "tuple not visible".
		return nil, false, fmt.Errorf("core: reading %s key %v: %w", table, key, err)
	}
	t, visible, err = vt.ext.ReadAsOf(ext, sess.vn)
	if err == ErrSessionExpired {
		err = sess.markExpired()
	}
	return t, visible, err
}

// withSessionVN returns params with :sessionVN bound to vn, without
// mutating the caller's map.
func withSessionVN(params exec.Params, vn VN) exec.Params {
	out := make(exec.Params, len(params)+1)
	for k, v := range params {
		out[k] = v
	}
	out[sessionParam] = catalog.NewInt(int64(vn))
	return out
}

// ParseCreateTable parses a CREATE TABLE statement (with UPDATABLE column
// markers and UNIQUE KEY clause) into its base schema without creating
// anything. The shard router uses it to resolve the schema once before
// fanning the create out to every shard.
func ParseCreateTable(text string) (*catalog.Schema, error) {
	return parseCreate(text)
}

func parseCreate(text string) (*catalog.Schema, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, err
	}
	ct, ok := stmt.(*sql.CreateTableStmt)
	if !ok {
		return nil, fmt.Errorf("core: expected CREATE TABLE, got %T", stmt)
	}
	cols := make([]catalog.Column, len(ct.Columns))
	for i, c := range ct.Columns {
		cols[i] = catalog.Column{Name: c.Name, Type: c.Type, Length: c.Length, Updatable: c.Updatable}
	}
	return catalog.NewSchema(ct.Name, cols, ct.Key...)
}
