package core

import (
	"fmt"

	"repro/internal/catalog"
	"repro/internal/storage"
)

// CheckInvariants scans every versioned table and verifies the structural
// 2VNL/nVNL invariants the decision tables (§3.3) and the recovery path
// (§7) must preserve. It is the crash harness's post-recovery oracle, but
// is callable on any quiescent store:
//
//   - No slot's tupleVN exceeds the highest version that can have written
//     it: currentVN, or currentVN+1 while a maintenance transaction is
//     active.
//   - Slot VNs are non-increasing from slot 1 to slot n−1 (newer versions
//     live in lower slots; PushBack shifts them down).
//   - A slot with tupleVN 0 records no operation, and a slot with a
//     nonzero tupleVN records a valid one (insert, update, delete).
//   - The table's oldest-slot high-water mark equals the scan maximum,
//     and the O(1) expiration probe agrees with its scan oracle for every
//     version through currentVN+2.
//
// The first violation is returned as a descriptive error; nil means every
// table passed.
func (s *Store) CheckInvariants() error {
	maxVN := s.CurrentVN()
	if s.MaintenanceActive() {
		maxVN++
	}
	for _, vt := range s.Tables() {
		if err := vt.checkInvariants(maxVN, s.CurrentVN()); err != nil {
			return err
		}
	}
	return nil
}

func (vt *VTable) checkInvariants(maxVN, currentVN VN) error {
	e := vt.ext
	name := vt.Base().Name
	oldest := e.L.N - 1
	var scanMax int64
	var firstErr error
	vt.tbl.Scan(func(rid storage.RID, tu catalog.Tuple) bool {
		prev := VN(-1)
		for j := 1; j <= e.L.N-1; j++ {
			vn := e.TupleVN(tu, j)
			op := e.OpAt(tu, j)
			if vn > maxVN {
				firstErr = fmt.Errorf("core: %s%v slot %d: tupleVN %d exceeds max writable version %d", name, rid, j, vn, maxVN)
				return false
			}
			if prev >= 0 && vn > prev {
				firstErr = fmt.Errorf("core: %s%v slot %d: tupleVN %d exceeds newer slot's %d", name, rid, j, vn, prev)
				return false
			}
			prev = vn
			switch {
			case vn == 0 && op != OpNone:
				firstErr = fmt.Errorf("core: %s%v slot %d: empty slot records operation %q", name, rid, j, op)
				return false
			case vn != 0 && op != OpInsert && op != OpUpdate && op != OpDelete:
				firstErr = fmt.Errorf("core: %s%v slot %d: tupleVN %d with invalid operation %q", name, rid, j, vn, op)
				return false
			}
		}
		if vn := int64(e.TupleVN(tu, oldest)); vn > scanMax {
			scanMax = vn
		}
		return true
	})
	if firstErr != nil {
		return firstErr
	}
	if got := vt.oldestHW.Load(); got != scanMax {
		return fmt.Errorf("core: %s: oldestHW %d diverges from scan maximum %d", name, got, scanMax)
	}
	for vn := VN(0); vn <= currentVN+2; vn++ {
		if fast, slow := vt.hasUnreconstructible(vn), vt.scanUnreconstructible(vn); fast != slow {
			return fmt.Errorf("core: %s: hasUnreconstructible(%d) = %v but scan oracle says %v", name, vn, fast, slow)
		}
	}
	return nil
}
