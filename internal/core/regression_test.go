package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/storage"
)

// assertWatermark pins the per-table oldest-slot high-water mark against
// the full-scan oracle: the stored mark equals the scan maximum, and the
// O(1) expiration probe agrees with the scan form for every version up to
// just past currentVN.
func assertWatermark(t *testing.T, s *Store, vt *VTable) {
	t.Helper()
	e := vt.ext
	oldest := e.L.N - 1
	var max int64
	vt.tbl.Scan(func(_ storage.RID, tu catalog.Tuple) bool {
		if vn := int64(e.TupleVN(tu, oldest)); vn > max {
			max = vn
		}
		return true
	})
	if got := vt.oldestHW.Load(); got != max {
		t.Errorf("%s: oldestHW = %d, scan max = %d", vt.Base().Name, got, max)
	}
	for vn := VN(0); vn <= s.CurrentVN()+2; vn++ {
		fast, slow := vt.hasUnreconstructible(vn), vt.scanUnreconstructible(vn)
		if fast != slow {
			t.Errorf("%s: hasUnreconstructible(%d) = %v, scan oracle = %v", vt.Base().Name, vn, fast, slow)
		}
	}
}

// TestOldestHWMatchesScan drives every path that can move a table's
// watermark — inserts, updates, deletes, both rollback modes, recovery's
// SetCurrentVN, and GC — asserting the maintained mark never diverges from
// the scan oracle.
func TestOldestHWMatchesScan(t *testing.T) {
	s := newStore(t, 2)
	vt, err := s.CreateTable(kvSchema())
	if err != nil {
		t.Fatal(err)
	}
	step := func(name string) {
		t.Helper()
		assertWatermark(t, s, vt)
		if t.Failed() {
			t.Fatalf("watermark diverged after %s", name)
		}
	}
	step("create")

	m := mustMaint(t, s)
	for k := int64(0); k < 6; k++ {
		if err := m.Insert("kv", kvTuple(k, 10)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)
	step("insert commit")

	m = mustMaint(t, s)
	if _, err := m.Exec(`UPDATE kv SET v = v + 1 WHERE k < 3`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(5)}); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	step("update/delete commit")

	// Undo-log rollback restores bookkeeping images exactly; the watermark
	// must fall back with them.
	m = mustMaint(t, s)
	if _, err := m.Exec(`UPDATE kv SET v = v + 100 WHERE k < 4`, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("kv", kvTuple(40, 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	step("undo-log rollback")

	// Logless rollback rewrites slot 1 as (currentVN, ·); recompute keeps
	// the mark exact.
	m2, err := s.BeginMaintenanceMode(RollbackLogless, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m2.Exec(`UPDATE kv SET v = v + 100 WHERE k < 2`, nil); err != nil {
		t.Fatal(err)
	}
	if err := m2.Rollback(); err != nil {
		t.Fatal(err)
	}
	step("logless rollback")

	// GC physically removes dead tuples, possibly the ones carrying the
	// mark.
	m = mustMaint(t, s)
	if _, err := m.Exec(`DELETE FROM kv WHERE k = 4`, nil); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	s.GC()
	step("gc")

	// Recovery installs a version without running the maintenance write
	// path; SetCurrentVN rebuilds the marks by scan.
	if err := s.SetCurrentVN(s.CurrentVN() + 3); err != nil {
		t.Fatal(err)
	}
	step("recovery SetCurrentVN")
}

// TestSessionGetSurfacesHeapError is the regression test for the swallowed
// storage error: when the key index points at a tuple the heap cannot
// serve, Get must report the failure, not mask it as "tuple not visible".
func TestSessionGetSurfacesHeapError(t *testing.T) {
	s := newStore(t, 2)
	vt, err := s.CreateTable(kvSchema())
	if err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	sess := s.BeginSession()
	defer sess.Close()

	key := catalog.Tuple{catalog.NewInt(1)}
	rid, ok := vt.Storage().SearchKey(key)
	if !ok {
		t.Fatal("key not indexed")
	}
	// Corrupt the table: remove the tuple from the heap directly, leaving
	// the index entry dangling.
	if err := vt.Storage().Heap().Delete(rid); err != nil {
		t.Fatal(err)
	}
	_, visible, err := sess.Get("kv", key)
	if err == nil {
		t.Fatal("Get over a dangling index entry returned no error")
	}
	if visible {
		t.Error("Get reported a visible tuple it could not read")
	}
	if !errors.Is(err, storage.ErrNoSuchTuple) {
		t.Errorf("Get error does not wrap the storage cause: %v", err)
	}
	if !strings.Contains(err.Error(), "kv") {
		t.Errorf("Get error does not name the table: %v", err)
	}
}

// TestCommitSurfacesVersionRelationError covers the setGlobalsLocked fix
// in relation-backed mode: a failed Version-relation write surfaces from
// Commit, nothing is installed, and the transaction stays active so the
// caller can repair and retry.
func TestCommitSurfacesVersionRelationError(t *testing.T) {
	d := db.Open(db.Options{})
	s, err := Open(d, Options{VersionRelation: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	// Break the global state's backing: delete the single Version tuple.
	var rid storage.RID
	s.versionTbl.Scan(func(r storage.RID, _ catalog.Tuple) bool { rid = r; return false })
	if err := s.versionTbl.Delete(rid); err != nil {
		t.Fatal(err)
	}
	err = m.Commit()
	if err == nil {
		t.Fatal("Commit with a broken Version relation succeeded")
	}
	if !strings.Contains(err.Error(), "installing version") {
		t.Errorf("Commit error = %v", err)
	}
	// Repair the relation; nothing was installed, so the transaction is
	// still the active one (the restored tuple carries active = true).
	if _, err := s.versionTbl.Insert(catalog.Tuple{catalog.NewInt(1), catalog.NewBool(true)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginMaintenance(); !errors.Is(err, ErrMaintenanceActive) {
		t.Fatalf("BeginMaintenance after failed commit = %v, want ErrMaintenanceActive", err)
	}
	// Retry the same transaction.
	commit(t, m)
	if got := s.CurrentVN(); got != 2 {
		t.Errorf("CurrentVN after retried commit = %d, want 2", got)
	}

	// The begin path surfaces the same failure class.
	s.versionTbl.Scan(func(r storage.RID, _ catalog.Tuple) bool { rid = r; return false })
	if err := s.versionTbl.Delete(rid); err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginMaintenance(); err == nil || !strings.Contains(err.Error(), "raising maintenanceActive") {
		t.Fatalf("BeginMaintenance with a broken Version relation = %v", err)
	}
	if _, err := s.versionTbl.Insert(catalog.Tuple{catalog.NewInt(2), catalog.NewBool(false)}); err != nil {
		t.Fatal(err)
	}
	m = mustMaint(t, s)
	commit(t, m)
	if got := s.CurrentVN(); got != 3 {
		t.Errorf("CurrentVN after repair = %d, want 3", got)
	}
}

// TestAdoptTableFailureLeavesOriginalIntact injects a mid-load failure
// into AdoptTable and checks the create-and-load-first ordering: the
// user's table is untouched, nothing is registered, and the half-built
// replacement is cleaned up — then a retry succeeds.
func TestAdoptTableFailureLeavesOriginalIntact(t *testing.T) {
	s := newStore(t, 2)
	d := s.DB()
	if _, err := d.Exec(`CREATE TABLE kv (k INT(8), v INT(8) UPDATABLE, UNIQUE KEY(k))`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Exec(`INSERT INTO kv VALUES (1, 10), (2, 20), (3, 30)`, nil); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("injected load failure")
	s.adoptLoadHook = func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	}
	if _, err := s.AdoptTable("kv"); !errors.Is(err, boom) {
		t.Fatalf("AdoptTable with failing load = %v, want injected failure", err)
	}
	// The original table survives with its data.
	old, err := d.TableOf("kv")
	if err != nil {
		t.Fatalf("original table gone after failed adoption: %v", err)
	}
	if old.Len() != 3 {
		t.Errorf("original table has %d tuples after failed adoption", old.Len())
	}
	rows, err := d.Query(`SELECT SUM(v) FROM kv`, nil)
	if err != nil || rows.Tuples[0][0].Int() != 60 {
		t.Errorf("original table query after failed adoption: %v %v", err, rows)
	}
	// Nothing registered, no temporary table left behind.
	if _, err := s.Table("kv"); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("failed adoption registered the table: %v", err)
	}
	if _, err := d.TableOf("kv__adopting"); err == nil {
		t.Error("temporary adoption table left behind")
	}

	// Retry without the fault: full success, replacement under the old
	// name.
	s.adoptLoadHook = nil
	vt, err := s.AdoptTable("kv")
	if err != nil {
		t.Fatal(err)
	}
	if vt.Len() != 3 {
		t.Errorf("adopted %d tuples, want 3", vt.Len())
	}
	if _, err := d.TableOf("kv__adopting"); err == nil {
		t.Error("temporary adoption table left behind after success")
	}
	sess := s.BeginSession()
	defer sess.Close()
	rows, err = sess.Query(`SELECT SUM(v) FROM kv`, nil)
	if err != nil || rows.Tuples[0][0].Int() != 60 {
		t.Fatalf("adopted query: %v %v", err, rows)
	}
	assertWatermark(t, s, vt)
}
