package core

import (
	"time"

	"repro/internal/obs"
)

// Trace event names emitted by the version store. Arg semantics per event:
// session_begin/close/expired carry the sessionVN; maint_commit carries the
// transaction's physical-operation count; gc_pass carries tuples reclaimed;
// vn_advance carries the new currentVN in VN with Arg unused.
const (
	TraceSessionBegin   = "session_begin"
	TraceSessionClose   = "session_close"
	TraceSessionExpired = "session_expired"
	TraceMaintBegin     = "maint_begin"
	TraceMaintCommit    = "maint_commit"
	TraceMaintRollback  = "maint_rollback"
	TraceVNAdvance      = "vn_advance"
	TraceGCPass         = "gc_pass"
)

// storeMetrics holds the store's instrumentation points. Every field is a
// shared-registry metric, so several stores on one registry (the default in
// the binaries) aggregate into common series; the per-cell counters expose
// each Tables 2–4 outcome individually so the decision-table dynamics of
// §3.3 are observable at runtime, not only in bench harnesses.
type storeMetrics struct {
	tracer obs.Tracer

	sessionsBegun   *obs.Counter
	sessionsClosed  *obs.Counter
	sessionsExpired *obs.Counter
	activeSessions  *obs.Gauge

	currentVN   *obs.Gauge
	maintActive *obs.Gauge
	vnAdvances  *obs.Counter
	latchHold   *obs.Histogram

	maintBegun     *obs.Counter
	maintCommits   *obs.Counter
	commitRetries  *obs.Counter
	maintRollbacks *obs.Counter
	commitNS       *obs.Histogram
	rollbackNS     *obs.Histogram
	txnNS          *obs.Histogram

	logicalIns *obs.Counter
	logicalUpd *obs.Counter
	logicalDel *obs.Counter
	physIns    *obs.Counter
	physUpd    *obs.Counter
	physDel    *obs.Counter
	netFolds   *obs.Counter

	// Tables 2–4 outcome cells (§3.3). Row numbering follows the paper:
	// row 1 = tuple last touched by an earlier transaction, row 2 = tuple
	// already touched by this transaction; Table 2 row 3 = no existing
	// tuple. Table 4 row 2 splits by the recorded previous operation.
	cellT2R1          *obs.Counter // insert over an earlier delete → physical update, op=insert
	cellT2R2          *obs.Counter // insert over a same-txn delete → net effect update
	cellT2R3          *obs.Counter // fresh insert → physical insert
	cellT3R1          *obs.Counter // first-touch update → push-back + physical update
	cellT3R2          *obs.Counter // same-txn re-update → overwrite current values only
	cellT4R1          *obs.Counter // first-touch delete → physical update, op=delete
	cellT4R2Update    *obs.Counter // delete after same-txn update → net effect delete
	cellT4R2InsDelete *obs.Counter // delete after same-txn fresh insert → physical delete
	cellT4R2InsPop    *obs.Counter // delete after same-txn re-insert → pop restored history (nVNL)

	// Parallel batch apply (ApplyBatch).
	batchApplies *obs.Counter
	batchDeltas  *obs.Counter
	batchNS      *obs.Histogram

	// Prepared-statement rewrite cache (Prepare/QueryPrepared).
	preparedHits   *obs.Counter
	preparedMisses *obs.Counter

	// Ad-hoc rewrite/plan cache (Session.Query / QueryStmt / server MsgQuery).
	planHits   *obs.Counter
	planMisses *obs.Counter

	gcPasses  *obs.Counter
	gcScanned *obs.Counter
	gcRemoved *obs.Counter
	gcBytes   *obs.Counter
}

func newStoreMetrics(reg *obs.Registry, tracer obs.Tracer) *storeMetrics {
	c := reg.Counter
	g := reg.Gauge
	h := func(name, help string) *obs.Histogram {
		return reg.Histogram(name, help, obs.DurationBuckets)
	}
	return &storeMetrics{
		tracer: tracer,

		sessionsBegun:   c("core_sessions_begun_total", "reader sessions begun"),
		sessionsClosed:  c("core_sessions_closed_total", "reader sessions closed"),
		sessionsExpired: c("core_sessions_expired_total", "reader sessions that hit ErrSessionExpired (§3.2/§5)"),
		activeSessions:  g("core_sessions_active", "live reader sessions"),

		currentVN:   g("core_current_vn", "committed database version number"),
		maintActive: g("core_maintenance_active", "1 while a maintenance transaction runs"),
		vnAdvances:  c("core_vn_advances_total", "currentVN increments (committed maintenance transactions)"),
		latchHold:   h("core_latch_hold_ns", "hold time of the global-variable latch (§3)"),

		maintBegun:     c("core_maint_begun_total", "maintenance transactions begun"),
		maintCommits:   c("core_maint_commits_total", "maintenance transactions committed"),
		commitRetries:  c("core_commit_retries_total", "transient version-install failures retried during Commit"),
		maintRollbacks: c("core_maint_rollbacks_total", "maintenance transactions rolled back"),
		commitNS:       h("core_maint_commit_ns", "latency of Commit (journal force + version install)"),
		rollbackNS:     h("core_maint_rollback_ns", "latency of Rollback (undo or logless revert)"),
		txnNS:          h("core_maint_txn_ns", "maintenance transaction duration, begin to finish"),

		logicalIns: c("core_maint_logical_inserts_total", "logical insert operations (§3.3)"),
		logicalUpd: c("core_maint_logical_updates_total", "logical update operations"),
		logicalDel: c("core_maint_logical_deletes_total", "logical delete operations"),
		physIns:    c("core_maint_physical_inserts_total", "physical tuple inserts"),
		physUpd:    c("core_maint_physical_updates_total", "physical in-place tuple updates"),
		physDel:    c("core_maint_physical_deletes_total", "physical tuple deletes"),
		netFolds:   c("core_maint_net_effect_folds_total", "second touches folded into net effects (Tables 2–4 row 2)"),

		cellT2R1:          c("core_maint_table2_row1_total", "insert over earlier delete: physical update, op=insert"),
		cellT2R2:          c("core_maint_table2_row2_total", "insert over same-txn delete: net effect update"),
		cellT2R3:          c("core_maint_table2_row3_total", "fresh insert: physical insert"),
		cellT3R1:          c("core_maint_table3_row1_total", "first-touch update: pre-update copy + physical update"),
		cellT3R2:          c("core_maint_table3_row2_total", "same-txn re-update: current values overwritten"),
		cellT4R1:          c("core_maint_table4_row1_total", "first-touch delete: physical update, op=delete"),
		cellT4R2Update:    c("core_maint_table4_row2_update_total", "delete after same-txn update: net effect delete"),
		cellT4R2InsDelete: c("core_maint_table4_row2_insert_total", "delete after same-txn insert: physical delete"),
		cellT4R2InsPop:    c("core_maint_table4_row2_insert_pop_total", "delete after same-txn re-insert: history popped (nVNL)"),

		batchApplies: c("core_maint_batches_total", "ApplyBatch calls (parallel Tables 2–4 apply)"),
		batchDeltas:  c("core_maint_batch_deltas_total", "logical deltas applied through ApplyBatch"),
		batchNS:      h("core_maint_batch_apply_ns", "latency of one ApplyBatch call, partition to join"),

		preparedHits:   c("core_prepared_rewrite_hits_total", "prepared executions served from the cached §4.1 rewrite"),
		preparedMisses: c("core_prepared_rewrite_misses_total", "prepared executions that re-derived the §4.1 rewrite"),

		planHits:   c("core_plan_cache_hits_total", "ad-hoc queries served from the cached rewrite/compiled plan"),
		planMisses: c("core_plan_cache_misses_total", "ad-hoc queries that parsed, rewrote, and compiled a fresh plan"),

		gcPasses:  c("core_gc_passes_total", "garbage-collection passes"),
		gcScanned: c("core_gc_scanned_total", "physical tuples examined by GC"),
		gcRemoved: c("core_gc_removed_total", "logically-deleted tuples physically reclaimed"),
		gcBytes:   c("core_gc_bytes_reclaimed_total", "bytes reclaimed by GC"),
	}
}

func (m *storeMetrics) trace(name string, vn VN, arg int64) {
	m.tracer.Emit(name, int64(vn), arg)
}

// latchAcquire takes the global-variable latch and returns the acquisition
// time so latchRelease can record the hold duration.
func (s *Store) latchAcquire() time.Time {
	s.mu.Lock()
	return time.Now()
}

// latchRelease drops the latch and records how long it was held. The
// observation happens after the unlock so measuring never extends the hold.
func (s *Store) latchRelease(acquired time.Time) {
	s.mu.Unlock()
	s.metrics.latchHold.ObserveSince(acquired)
}

// Metrics returns the registry this store's instrumentation writes to.
func (s *Store) Metrics() *obs.Registry { return s.reg }

// Tracer returns the event tracer this store emits to.
func (s *Store) Tracer() obs.Tracer { return s.metrics.tracer }
