package core

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/obs"
	"repro/internal/storage"
)

// The differential suite: the parallel batch apply must be observationally
// identical to the sequential oracle on the same batch — equal physical
// tuples, equal per-cell Tables 2–4 counters, and equal reader-visible
// states at both the pre-batch sessionVN and the new currentVN. Batches are
// seeded-random with deliberate same-key multi-touch so the second rows of
// Tables 2–4 (the net-effect folds, the cells that reorder under a naive
// parallelization) are exercised on every seed.

// maintCellSeries are the registry series the suite compares one-for-one.
var maintCellSeries = []string{
	"core_maint_logical_inserts_total",
	"core_maint_logical_updates_total",
	"core_maint_logical_deletes_total",
	"core_maint_physical_inserts_total",
	"core_maint_physical_updates_total",
	"core_maint_physical_deletes_total",
	"core_maint_net_effect_folds_total",
	"core_maint_table2_row1_total",
	"core_maint_table2_row2_total",
	"core_maint_table2_row3_total",
	"core_maint_table3_row1_total",
	"core_maint_table3_row2_total",
	"core_maint_table4_row1_total",
	"core_maint_table4_row2_update_total",
	"core_maint_table4_row2_insert_total",
	"core_maint_table4_row2_insert_pop_total",
	"core_maint_batch_deltas_total",
}

const (
	diffLiveKeys = 12 // preloaded live
	diffDeadKeys = 6  // preloaded then logically deleted (Table 2 row 1 bait)
	diffKeySpace = 24 // live + dead + never-seen
)

// diffStore builds a store on a private registry with the fixed preload:
// keys 0..17 inserted at VN 2, keys 12..17 logically deleted at VN 3.
// currentVN is 3 afterwards; the batch under test runs at VN 4.
func diffStore(t *testing.T, n int) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s := newStore(t, n, func(o *Options) { o.Metrics = reg })
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	for k := int64(0); k < diffLiveKeys+diffDeadKeys; k++ {
		if err := m.Insert("kv", kvTuple(k, 100+k)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)
	m = mustMaint(t, s)
	for k := int64(diffLiveKeys); k < diffLiveKeys+diffDeadKeys; k++ {
		if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(k)}); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)
	return s, reg
}

// genDiffBatch produces a seeded batch of deltas that is legal to apply to
// the diffStore preload in submission order: the only illegal operation —
// insert of a live key — is avoided by tracking liveness as the batch
// folds. Updates and deletes of missing keys are legal skips and are
// generated on purpose. Every fourth draw emits a same-key pair so
// multi-touch (the Tables 2–4 second rows) occurs on every seed.
func genDiffBatch(rng *rand.Rand, ops int) []Delta {
	live := make(map[int64]bool)
	for k := int64(0); k < diffLiveKeys; k++ {
		live[k] = true
	}
	var out []Delta
	emit := func(k int64) {
		row := kvTuple(k, rng.Int63n(1_000_000))
		key := catalog.Tuple{catalog.NewInt(k)}
		if !live[k] {
			switch rng.Intn(4) {
			case 0, 1:
				out = append(out, Delta{Table: "kv", Op: DeltaInsert, Row: row})
				live[k] = true
			case 2:
				out = append(out, Delta{Table: "kv", Op: DeltaUpdate, Row: row, Key: key})
			default:
				out = append(out, Delta{Table: "kv", Op: DeltaDelete, Key: key})
			}
			return
		}
		switch rng.Intn(3) {
		case 0:
			out = append(out, Delta{Table: "kv", Op: DeltaUpdate, Row: row, Key: key})
		default:
			out = append(out, Delta{Table: "kv", Op: DeltaDelete, Key: key})
			live[k] = false
		}
	}
	for len(out) < ops {
		k := rng.Int63n(diffKeySpace)
		emit(k)
		if rng.Intn(4) == 0 {
			emit(k) // deliberate same-key multi-touch
		}
	}
	return out
}

// dumpPhysical renders the table's extended tuples, sorted, RID-free: the
// parallel path may place tuples at different slots, but the tuple contents
// must match exactly.
func dumpPhysical(t *testing.T, s *Store) []string {
	t.Helper()
	vt, err := s.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	vt.Storage().Scan(func(_ storage.RID, tu catalog.Tuple) bool {
		out = append(out, tupleString(tu))
		return true
	})
	sort.Strings(out)
	return out
}

func tupleString(tu catalog.Tuple) string {
	parts := make([]string, len(tu))
	for i, v := range tu {
		parts[i] = v.String()
	}
	return strings.Join(parts, "|")
}

// dumpSession renders a session's reader-visible kv state, sorted.
func dumpSession(t *testing.T, sess *Session) []string {
	t.Helper()
	var out []string
	if err := sess.Scan("kv", func(tu catalog.Tuple) bool {
		out = append(out, tupleString(tu))
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func dumpCells(reg *obs.Registry) map[string]int64 {
	out := make(map[string]int64, len(maintCellSeries))
	for _, name := range maintCellSeries {
		out[name] = reg.CounterValue(name)
	}
	return out
}

// diffRun applies the batch with the given worker count on a fresh store
// and returns every observable the suite compares.
type diffRun struct {
	phys    []string
	oldScan []string
	newScan []string
	cells   map[string]int64
	bstats  BatchStats
	mstats  MaintStats
}

func runDiff(t *testing.T, n int, deltas []Delta, workers int) diffRun {
	t.Helper()
	s, reg := diffStore(t, n)
	old := s.BeginSession() // sessionVN = 3, spans the batch commit
	defer old.Close()
	m := mustMaint(t, s)
	bstats, err := m.ApplyBatchWorkers(deltas, workers)
	if err != nil {
		t.Fatalf("ApplyBatchWorkers(%d): %v", workers, err)
	}
	mstats := m.Stats()
	commit(t, m)
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("invariants after workers=%d: %v", workers, err)
	}
	now := s.BeginSession() // sessionVN = 4, the batch's result
	defer now.Close()
	return diffRun{
		phys:    dumpPhysical(t, s),
		oldScan: dumpSession(t, old),
		newScan: dumpSession(t, now),
		cells:   dumpCells(reg),
		bstats:  bstats,
		mstats:  mstats,
	}
}

func compareDiffRuns(t *testing.T, seq, par diffRun, workers int) {
	t.Helper()
	if seq.bstats.Applied != par.bstats.Applied || seq.bstats.Missing != par.bstats.Missing {
		t.Errorf("BatchStats diverge: seq applied=%d missing=%d, par(workers=%d) applied=%d missing=%d",
			seq.bstats.Applied, seq.bstats.Missing, workers, par.bstats.Applied, par.bstats.Missing)
	}
	if seq.mstats != par.mstats {
		t.Errorf("MaintStats diverge:\nseq %+v\npar %+v", seq.mstats, par.mstats)
	}
	for _, name := range maintCellSeries {
		if seq.cells[name] != par.cells[name] {
			t.Errorf("counter %s diverges: seq %d par %d", name, seq.cells[name], par.cells[name])
		}
	}
	compareDump(t, "physical tuples", seq.phys, par.phys)
	compareDump(t, "pre-batch session scan", seq.oldScan, par.oldScan)
	compareDump(t, "post-batch session scan", seq.newScan, par.newScan)
}

func compareDump(t *testing.T, what string, a, b []string) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s diverge: %d vs %d rows", what, len(a), len(b))
		return
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("%s diverge at row %d:\nseq: %s\npar: %s", what, i, a[i], b[i])
			return
		}
	}
}

// TestParallelBatchMatchesSequentialOracle is the differential property
// test: 200 seeds per version depth, each batch applied via the sequential
// oracle and via the parallel path with a seed-dependent worker count.
func TestParallelBatchMatchesSequentialOracle(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 25
	}
	for _, n := range []int{2, 3} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			for seed := 0; seed < seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(n)*10_000 + int64(seed)))
				deltas := genDiffBatch(rng, 50)
				workers := 2 + seed%7
				seq := runDiff(t, n, deltas, 1)
				par := runDiff(t, n, deltas, workers)
				if t.Failed() {
					t.Fatalf("seed %d diverged before comparison", seed)
				}
				compareDiffRuns(t, seq, par, workers)
				if t.Failed() {
					t.Fatalf("seed %d (workers=%d) diverged", seed, workers)
				}
			}
		})
	}
}

// TestParallelBatchLargeKeyspace stresses partition balance with a larger
// batch over a wider key range, checking the same equivalence plus that the
// parallel path actually fanned out.
func TestParallelBatchLargeKeyspace(t *testing.T) {
	s, _ := diffStore(t, 2)
	rng := rand.New(rand.NewSource(7))
	var deltas []Delta
	for k := int64(100); k < 1100; k++ {
		deltas = append(deltas, Delta{Table: "kv", Op: DeltaInsert, Row: kvTuple(k, rng.Int63n(1000))})
	}
	for i := 0; i < 500; i++ {
		k := 100 + rng.Int63n(1000)
		if rng.Intn(2) == 0 {
			deltas = append(deltas, Delta{Table: "kv", Op: DeltaUpdate, Row: kvTuple(k, rng.Int63n(1000)), Key: catalog.Tuple{catalog.NewInt(k)}})
		} else {
			// Delete then re-insert in one batch: forces the same-partition
			// ordering to matter for 500 random keys.
			deltas = append(deltas, Delta{Table: "kv", Op: DeltaDelete, Key: catalog.Tuple{catalog.NewInt(k)}})
			deltas = append(deltas, Delta{Table: "kv", Op: DeltaInsert, Row: kvTuple(k, rng.Int63n(1000))})
		}
	}
	m := mustMaint(t, s)
	st, err := m.ApplyBatchWorkers(deltas, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 || st.Partitions != 4 {
		t.Fatalf("expected 4 workers/partitions, got %+v", st)
	}
	commit(t, m)
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Oracle comparison on a second store.
	s2, _ := diffStore(t, 2)
	m2 := mustMaint(t, s2)
	st2, err := m2.ApplyBatchSeq(deltas)
	if err != nil {
		t.Fatal(err)
	}
	commit(t, m2)
	if st.Applied != st2.Applied || st.Missing != st2.Missing {
		t.Fatalf("batch stats diverge: par %+v seq %+v", st, st2)
	}
	compareDump(t, "physical tuples", dumpPhysical(t, s2), dumpPhysical(t, s))
}
