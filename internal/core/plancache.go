package core

import (
	"sync"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/sql"
)

// defaultPlanCacheEntries bounds the ad-hoc plan cache when Options leaves
// PlanCacheSize at zero. The cache is per store and keyed by query text, so
// the bound caps memory for workloads that generate unbounded distinct SQL
// (e.g. literals inlined instead of parameters).
const defaultPlanCacheEntries = 256

// planEntry is one cached, immutable query plan: the §4.1 rewrite compiled
// by exec.CompileSelect, valid for exactly the table registry it was derived
// against. src is the original (pre-rewrite) statement, retained so the rare
// stale-plan race — the registry flipped between cache validation and
// execution — can recover by re-deriving instead of failing the query.
type planEntry struct {
	reg  *tableRegistry
	src  *sql.SelectStmt
	plan *exec.Plan
}

// planCache is the store-level rewrite/plan cache for ad-hoc queries
// (Session.Query, Session.QueryStmt, and the server's MsgQuery path, which
// funnels through Session.Query). Entries are keyed twice: by the raw query
// text, so a repeated Query(text) skips the parser entirely, and by the
// canonical printed form (sql.Print), so textual variants of one statement
// share a single compiled plan and QueryStmt callers hit too.
//
// Validity follows the same rule as Prepared: a cached plan is usable iff
// the store's copy-on-write table registry is the identical pointer the plan
// was derived against. CreateTable and AdoptTable publish a fresh registry,
// invalidating every entry with no shootdown protocol — stale entries are
// simply missed and overwritten on the next derivation.
type planCache struct {
	mu    sync.RWMutex
	limit int
	m     map[string]*planEntry
}

func newPlanCache(limit int) *planCache {
	return &planCache{limit: limit, m: make(map[string]*planEntry)}
}

// get returns the entry under key when it is valid for reg, else nil.
func (c *planCache) get(key string, reg *tableRegistry) *planEntry {
	c.mu.RLock()
	e := c.m[key]
	c.mu.RUnlock()
	if e != nil && e.reg == reg {
		return e
	}
	return nil
}

// put installs e under every key, evicting arbitrary entries to stay within
// the size bound. Map-order eviction is deliberate: the cache is a steady-
// state accelerator, and any entry evicted by mistake is one miss away from
// being rebuilt.
func (c *planCache) put(keys []string, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range keys {
		if _, present := c.m[k]; !present && len(c.m) >= c.limit {
			for victim := range c.m {
				delete(c.m, victim)
				break
			}
		}
		c.m[k] = e
	}
}

// alias records an extra key (the raw spelling of a statement that hit under
// its canonical form) so the next Query with that exact text skips parsing.
func (c *planCache) alias(key string, e *planEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m[key] == e {
		return
	}
	if _, present := c.m[key]; !present && len(c.m) >= c.limit {
		for victim := range c.m {
			delete(c.m, victim)
			break
		}
	}
	c.m[key] = e
}

// len reports the number of cached keys (test hook).
func (c *planCache) size() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// selectPlan returns the cached plan for sel, deriving, compiling, and
// caching a fresh one on miss. raw, when non-empty, is the original query
// text and becomes a second cache key so the next Query(raw) skips the
// parser. Only called when the plan cache is enabled.
//
// The registry is loaded once, before derivation, exactly as Prepared does:
// a registry flip racing the derivation tags the new plan with the older
// pointer, which only means the next lookup misses and rebuilds — both plans
// are correct for the registry they loaded.
func (s *Store) selectPlan(sel *sql.SelectStmt, raw string) (*planEntry, error) {
	reg := s.tables.Load()
	canon := sql.Print(sel)
	if e := s.plans.get(canon, reg); e != nil {
		s.metrics.planHits.Inc()
		if raw != "" {
			s.plans.alias(raw, e)
		}
		return e, nil
	}
	s.metrics.planMisses.Inc()
	src := sql.CloneSelect(sel)
	rw, err := RewriteSelect(s, src)
	if err != nil {
		return nil, err
	}
	pl, err := exec.CompileSelect(queryCatalog{s}, rw, s.fastOptions(src))
	if err != nil {
		return nil, err
	}
	e := &planEntry{reg: reg, src: src, plan: pl}
	keys := []string{canon}
	if raw != "" && raw != canon {
		keys = append(keys, raw)
	}
	s.plans.put(keys, e)
	return e, nil
}

// fastOptions builds the per-batch version-reconstruction fast path (Table 1
// / §5) for a single-table SELECT over a versioned relation, or nil when the
// shape does not qualify.
//
// The fast variant is valid by the newest-first slot ordering: tupleVN1 is
// the maximum of a tuple's slot VNs, so for a session with
// sessionVN >= tupleVN1 every per-attribute CASE of the rewrite takes its
// first arm — the bare current-value column — and every visibility arm other
// than the first has a false :s < tupleVNj conjunct. The whole rewrite
// therefore collapses to the original statement plus the case-1 visibility
// residue `operation1 <> 'delete'`, reading base columns directly. The
// classifier is exactly that guard, one integer comparison per tuple, which
// the batch executor hoists to one decision per batch.
func (s *Store) fastOptions(sel *sql.SelectStmt) *exec.CompileOptions {
	if len(sel.From) != 1 {
		return nil
	}
	vt := s.lookup(sel.From[0].Table)
	if vt == nil {
		return nil
	}
	e := vt.ext
	fast := sql.CloneSelect(sel)
	var items []sql.SelectItem
	for _, it := range fast.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		// Expand * over the base schema, matching the rewrite's own star
		// expansion column for column (the extended schema's bookkeeping
		// columns must not leak here either).
		for _, c := range e.Base.Columns {
			items = append(items, sql.SelectItem{Expr: &sql.ColumnRef{Name: c.Name}, Alias: c.Name})
		}
	}
	fast.Items = items
	_, op1 := slotColNames(e.L.N, 1)
	guard := &sql.BinaryExpr{
		Op: sql.OpNe,
		L:  &sql.ColumnRef{Name: op1},
		R:  &sql.Literal{Value: catalog.NewString(string(OpDelete))},
	}
	if fast.Where == nil {
		fast.Where = guard
	} else {
		fast.Where = &sql.BinaryExpr{Op: sql.OpAnd, L: fast.Where, R: guard}
	}
	tvnIdx := e.L.TVN[0]
	classify := func(row catalog.Tuple, v catalog.Value) bool {
		tv := row[tvnIdx]
		if tv.IsNull() || v.IsNull() {
			// A null slot VN (never written by maintenance) falls back to
			// the full rewritten form rather than guessing.
			return false
		}
		return v.Int() >= tv.Int()
	}
	return &exec.CompileOptions{Fast: fast, Classify: classify, ClassifyParam: sessionParam}
}
