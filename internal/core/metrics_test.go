package core

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/obs"
)

// metricsStore opens a store over a private registry and ring tracer so the
// test can make exact-count assertions without interference from other
// tests sharing obs.Default().
func metricsStore(t *testing.T) (*Store, *obs.Registry, *obs.Ring) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := obs.NewRing(256)
	s, err := Open(db.Open(db.Options{}), Options{Metrics: reg, Tracer: ring})
	if err != nil {
		t.Fatal(err)
	}
	schema := catalog.MustSchema("DailySales", []catalog.Column{
		{Name: "city", Type: catalog.TypeString, Length: 20},
		{Name: "date", Type: catalog.TypeString, Length: 8},
		{Name: "total_sales", Type: catalog.TypeInt, Length: 4, Updatable: true},
	}, "city", "date")
	if _, err := s.CreateTable(schema); err != nil {
		t.Fatal(err)
	}
	return s, reg, ring
}

func row(city, date string, total int64) catalog.Tuple {
	return catalog.Tuple{catalog.NewString(city), catalog.NewString(date), catalog.NewInt(total)}
}

func rowKey(city, date string) catalog.Tuple {
	return catalog.Tuple{catalog.NewString(city), catalog.NewString(date)}
}

// TestFigure5CellCounters drives the paper's worked example — the Figure 4
// history followed by the Figure 5 maintenance transaction that yields
// Figure 6 — and asserts the per-cell Tables 2–4 counters match the
// decision-table outcomes cell for cell.
func TestFigure5CellCounters(t *testing.T) {
	s, reg, _ := metricsStore(t)

	run := func(fn func(m *Maintenance)) {
		t.Helper()
		m, err := s.BeginMaintenance()
		if err != nil {
			t.Fatal(err)
		}
		fn(m)
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	update := func(m *Maintenance, city, date string, total int64) {
		t.Helper()
		found, err := m.UpdateKey("DailySales", rowKey(city, date), func(c catalog.Tuple) catalog.Tuple {
			c[2] = catalog.NewInt(total)
			return c
		})
		if err != nil || !found {
			t.Fatalf("update %s/%s: found=%v err=%v", city, date, found, err)
		}
	}

	// Figure 4 history: transactions 2–4.
	run(func(m *Maintenance) { // VN 2
		if err := m.Insert("DailySales", row("Berkeley", "10/14/96", 10000)); err != nil {
			t.Fatal(err)
		}
		if err := m.Insert("DailySales", row("Novato", "10/13/96", 8000)); err != nil {
			t.Fatal(err)
		}
	})
	run(func(m *Maintenance) { // VN 3
		if err := m.Insert("DailySales", row("San Jose", "10/14/96", 10000)); err != nil {
			t.Fatal(err)
		}
	})
	run(func(m *Maintenance) { // VN 4
		if err := m.Insert("DailySales", row("San Jose", "10/15/96", 1500)); err != nil {
			t.Fatal(err)
		}
		update(m, "Berkeley", "10/14/96", 12000)
		if found, err := m.DeleteKey("DailySales", rowKey("Novato", "10/13/96")); err != nil || !found {
			t.Fatalf("delete: found=%v err=%v", found, err)
		}
	})

	before := reg.Snapshot()

	// The Figure 5 transaction (maintenanceVN = 5).
	run(func(m *Maintenance) {
		// Fresh insert: Table 2 row 3.
		if err := m.Insert("DailySales", row("San Jose", "10/16/96", 11000)); err != nil {
			t.Fatal(err)
		}
		// Insert over the VN-4 delete of Novato: Table 2 row 1.
		if err := m.Insert("DailySales", row("Novato", "10/13/96", 6000)); err != nil {
			t.Fatal(err)
		}
		// First-touch update: Table 3 row 1.
		update(m, "San Jose", "10/14/96", 10200)
		// First-touch delete: Table 4 row 1.
		if found, err := m.DeleteKey("DailySales", rowKey("Berkeley", "10/14/96")); err != nil || !found {
			t.Fatalf("delete: found=%v err=%v", found, err)
		}
	})

	delta := reg.Snapshot().Sub(before)
	// The Figure 5 transaction hits exactly four cells, once each.
	wantDelta := map[string]int64{
		"core_maint_table2_row1_total":            1, // Novato re-insert over earlier delete
		"core_maint_table2_row2_total":            0,
		"core_maint_table2_row3_total":            1, // San Jose 10/16 fresh insert
		"core_maint_table3_row1_total":            1, // San Jose 10/14 first-touch update
		"core_maint_table3_row2_total":            0,
		"core_maint_table4_row1_total":            1, // Berkeley first-touch delete
		"core_maint_table4_row2_update_total":     0,
		"core_maint_table4_row2_insert_total":     0,
		"core_maint_table4_row2_insert_pop_total": 0,
		// §3.3: four logical operations become one physical insert and
		// three physical updates — no physical delete.
		"core_maint_logical_inserts_total":  2,
		"core_maint_logical_updates_total":  1,
		"core_maint_logical_deletes_total":  1,
		"core_maint_physical_inserts_total": 1,
		"core_maint_physical_updates_total": 3,
		"core_maint_physical_deletes_total": 0,
		"core_maint_net_effect_folds_total": 0,
		"core_maint_commits_total":          1,
		"core_vn_advances_total":            1,
	}
	for name, want := range wantDelta {
		if got := delta.Counters[name]; got != want {
			t.Errorf("Figure 5 delta %s = %d, want %d", name, got, want)
		}
	}

	// Whole-history totals (Figure 4 history + Figure 5).
	wantTotal := map[string]int64{
		"core_maint_table2_row1_total": 1,
		"core_maint_table2_row2_total": 0,
		"core_maint_table2_row3_total": 5,
		"core_maint_table3_row1_total": 2,
		"core_maint_table3_row2_total": 0,
		"core_maint_table4_row1_total": 2,
		"core_maint_commits_total":     4,
		"core_vn_advances_total":       4,
	}
	for name, want := range wantTotal {
		if got := reg.CounterValue(name); got != want {
			t.Errorf("total %s = %d, want %d", name, got, want)
		}
	}
	if got := reg.GaugeValue("core_current_vn"); got != 5 {
		t.Errorf("core_current_vn = %d, want 5", got)
	}
}

// TestSameTxnCellCounters exercises the second rows of Tables 2–4 — the
// net-effect folds — and checks each fold lands in its own cell.
func TestSameTxnCellCounters(t *testing.T) {
	s, reg, _ := metricsStore(t)
	m, err := s.BeginMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	// insert + update: Table 3 row 2 (current values overwritten).
	if err := m.Insert("DailySales", row("a", "d1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.UpdateKey("DailySales", rowKey("a", "d1"), func(c catalog.Tuple) catalog.Tuple {
		c[2] = catalog.NewInt(2)
		return c
	}); err != nil {
		t.Fatal(err)
	}
	// insert + delete: Table 4 row 2, physical delete.
	if err := m.Insert("DailySales", row("b", "d1", 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteKey("DailySales", rowKey("b", "d1")); err != nil {
		t.Fatal(err)
	}
	// update + delete: Table 4 row 2, net-effect delete. ("a" was inserted
	// this txn, so delete it via a fresh tuple updated first.)
	if err := m.Insert("DailySales", row("c", "d1", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	m, err = s.BeginMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.UpdateKey("DailySales", rowKey("c", "d1"), func(c catalog.Tuple) catalog.Tuple {
		c[2] = catalog.NewInt(9)
		return c
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteKey("DailySales", rowKey("c", "d1")); err != nil {
		t.Fatal(err)
	}
	// delete + insert: Table 2 row 2 (net-effect update); "a" is live from
	// the first transaction.
	if _, err := m.DeleteKey("DailySales", rowKey("a", "d1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("DailySales", row("a", "d1", 7)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}

	want := map[string]int64{
		"core_maint_table2_row2_total":        1, // a: delete then insert
		"core_maint_table3_row2_total":        1, // a: insert then update (txn 1)
		"core_maint_table4_row2_insert_total": 1, // b: insert then delete
		"core_maint_table4_row2_update_total": 1, // c: update then delete
		"core_maint_net_effect_folds_total":   4,
	}
	for name, w := range want {
		if got := reg.CounterValue(name); got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
}

// TestSessionMetricsAndTrace checks session lifecycle counters, the
// deduplicated expiry count, and the trace event stream.
func TestSessionMetricsAndTrace(t *testing.T) {
	s, reg, ring := metricsStore(t)
	sess := s.BeginSession()
	if got := reg.GaugeValue("core_sessions_active"); got != 1 {
		t.Errorf("active = %d, want 1", got)
	}
	// Two committed maintenance transactions expire a 2VNL session.
	for i := 0; i < 2; i++ {
		m, err := s.BeginMaintenance()
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	if !sess.Expired() {
		t.Fatal("session should have expired after two maintenance commits")
	}
	// Repeated checks must not recount the expiry.
	_ = sess.Expired()
	_ = sess.Check()
	if got := reg.CounterValue("core_sessions_expired_total"); got != 1 {
		t.Errorf("expired counter = %d, want exactly 1 despite repeated checks", got)
	}
	sess.Close()
	if got := reg.CounterValue("core_sessions_closed_total"); got != 1 {
		t.Errorf("closed = %d, want 1", got)
	}
	if got := reg.GaugeValue("core_sessions_active"); got != 0 {
		t.Errorf("active = %d, want 0", got)
	}

	// The trace must contain the full lifecycle in order.
	var names []string
	for _, e := range ring.Events() {
		names = append(names, e.Name)
	}
	wantOrder := []string{
		TraceSessionBegin,
		TraceMaintBegin, TraceMaintCommit, TraceVNAdvance,
		TraceMaintBegin, TraceMaintCommit, TraceVNAdvance,
		TraceSessionExpired,
		TraceSessionClose,
	}
	if len(names) != len(wantOrder) {
		t.Fatalf("trace = %v, want %v", names, wantOrder)
	}
	for i, w := range wantOrder {
		if names[i] != w {
			t.Errorf("trace[%d] = %s, want %s (full: %v)", i, names[i], w, names)
		}
	}
}

// TestGCAndLatchMetrics checks the GC counters and that latch holds are
// being observed at all.
func TestGCAndLatchMetrics(t *testing.T) {
	s, reg, _ := metricsStore(t)
	m, err := s.BeginMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("DailySales", row("x", "d", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	m, err = s.BeginMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.DeleteKey("DailySales", rowKey("x", "d")); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	st := s.GC()
	if st.Removed != 1 {
		t.Fatalf("gc removed = %d, want 1", st.Removed)
	}
	if got := reg.CounterValue("core_gc_passes_total"); got != 1 {
		t.Errorf("gc passes = %d, want 1", got)
	}
	if got := reg.CounterValue("core_gc_removed_total"); got != 1 {
		t.Errorf("gc removed counter = %d, want 1", got)
	}
	if got := reg.CounterValue("core_gc_scanned_total"); got != int64(st.Scanned) {
		t.Errorf("gc scanned counter = %d, want %d", got, st.Scanned)
	}
	snap := reg.Snapshot()
	if h, ok := snap.Histograms["core_latch_hold_ns"]; !ok || h.Count == 0 {
		t.Error("latch hold histogram should have observations")
	}
}

// TestMaintenanceRollbackMetrics checks the rollback counter and the
// maintenance-active gauge transitions.
func TestMaintenanceRollbackMetrics(t *testing.T) {
	s, reg, _ := metricsStore(t)
	m, err := s.BeginMaintenance()
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.GaugeValue("core_maintenance_active"); got != 1 {
		t.Errorf("maintenance_active = %d, want 1", got)
	}
	if err := m.Insert("DailySales", row("r", "d", 1)); err != nil {
		t.Fatal(err)
	}
	if err := m.Rollback(); err != nil {
		t.Fatal(err)
	}
	if got := reg.GaugeValue("core_maintenance_active"); got != 0 {
		t.Errorf("maintenance_active = %d, want 0", got)
	}
	if got := reg.CounterValue("core_maint_rollbacks_total"); got != 1 {
		t.Errorf("rollbacks = %d, want 1", got)
	}
	if got := reg.CounterValue("core_maint_commits_total"); got != 0 {
		t.Errorf("commits = %d, want 0", got)
	}
	if got := reg.GaugeValue("core_current_vn"); got != 1 {
		t.Errorf("current_vn = %d, want 1 after rollback", got)
	}
}
