package core

import (
	"fmt"
	"strings"

	"repro/internal/catalog"
	"repro/internal/sql"
)

// sessionParam is the named parameter the rewrite injects, following the
// paper's ":sessionVN" placeholder notation (Example 4.1).
const sessionParam = "sessionVN"

// RewriteSelect applies the 2VNL/nVNL reader rewrite of §4.1 to a SELECT
// over versioned relations, returning a new statement (the input is not
// mutated):
//
//   - Every reference to an updatable attribute A of a versioned relation
//     becomes a CASE expression selecting the current value or the
//     appropriate pre-update value by comparing :sessionVN with the tuple
//     version numbers. For 2VNL this is exactly the paper's
//
//     CASE WHEN :sessionVN >= tupleVN THEN A ELSE pre_A END
//
//     and for nVNL the CASE walks the version slots newest-first.
//
//   - A visibility predicate is conjoined to WHERE for each versioned
//     relation, generalizing the paper's
//
//     (:sessionVN >= tupleVN AND operation <> 'delete') OR
//     (:sessionVN <  tupleVN AND operation <> 'insert')
//
// Tables not registered with the store pass through untouched, so queries
// may freely join versioned and ordinary relations.
func RewriteSelect(s *Store, sel *sql.SelectStmt) (*sql.SelectStmt, error) {
	out := sql.CloneSelect(sel)

	// Gather the versioned relations in FROM, keyed by binding name.
	type boundV struct {
		binding string
		vt      *VTable
	}
	var versioned []boundV
	// ownJudge resolves which FROM entry owns an unqualified column name;
	// rewriting applies only to unambiguous references.
	owners := func(col string) []int {
		var idxs []int
		for i, tr := range out.From {
			vt := s.lookup(tr.Table)
			if vt != nil {
				if vt.ext.Base.ColIndex(col) >= 0 || vt.ext.Ext.ColIndex(col) >= 0 {
					idxs = append(idxs, i)
				}
				continue
			}
			if tbl, err := s.d.Table(tr.Table); err == nil {
				if tbl.Schema().ColIndex(col) >= 0 {
					idxs = append(idxs, i)
				}
			}
		}
		return idxs
	}
	for _, tr := range out.From {
		if vt := s.lookup(tr.Table); vt != nil {
			versioned = append(versioned, boundV{binding: tr.Binding(), vt: vt})
		}
	}
	if len(versioned) == 0 {
		return out, nil
	}

	// rewriteRef maps a column reference to its versioned CASE form when it
	// names an updatable attribute of a versioned relation.
	rewriteRef := func(e sql.Expr) sql.Expr {
		cr, ok := e.(*sql.ColumnRef)
		if !ok {
			return e
		}
		for _, bv := range versioned {
			if cr.Table != "" {
				if !strings.EqualFold(cr.Table, bv.binding) {
					continue
				}
			} else {
				// Unqualified: rewrite only when exactly one FROM entry
				// owns the name and it is this versioned relation.
				own := owners(cr.Name)
				if len(own) != 1 || !strings.EqualFold(out.From[own[0]].Binding(), bv.binding) {
					continue
				}
			}
			bi := bv.vt.ext.Base.ColIndex(cr.Name)
			if bi < 0 {
				continue
			}
			if ord, upd := bv.vt.ext.IsUpdatable(bi); upd {
				return versionCase(bv.vt.ext, bv.binding, cr.Name, ord, cr.Table != "")
			}
			return e
		}
		return e
	}

	// Expand `*` items first — a raw star over the extended schema would
	// leak the bookkeeping columns and raw current values — so the single
	// transform pass below adds the CASE logic to the expansion too.
	var items []sql.SelectItem
	for _, it := range out.Items {
		if !it.Star {
			items = append(items, it)
			continue
		}
		expanded, err := expandVersionedStar(s, out)
		if err != nil {
			return nil, err
		}
		items = append(items, expanded...)
	}
	out.Items = items

	apply := func(e sql.Expr) sql.Expr { return sql.TransformExpr(e, rewriteRef) }
	for i := range out.Items {
		if out.Items[i].Expr == nil {
			continue
		}
		// Keep the output column name when a bare column reference is
		// about to be wrapped in a CASE expression.
		if cr, ok := out.Items[i].Expr.(*sql.ColumnRef); ok && out.Items[i].Alias == "" {
			out.Items[i].Alias = cr.Name
		}
		out.Items[i].Expr = apply(out.Items[i].Expr)
	}
	out.Where = apply(out.Where)
	for i := range out.GroupBy {
		out.GroupBy[i] = apply(out.GroupBy[i])
	}
	out.Having = apply(out.Having)
	for i := range out.OrderBy {
		out.OrderBy[i].Expr = apply(out.OrderBy[i].Expr)
	}
	for i := range out.From {
		out.From[i].On = apply(out.From[i].On)
	}

	// Conjoin each versioned relation's visibility predicate.
	for _, bv := range versioned {
		pred := visibilityPredicate(bv.vt.ext, bv.binding, len(out.From) > 1)
		if out.Where == nil {
			out.Where = pred
		} else {
			out.Where = &sql.BinaryExpr{Op: sql.OpAnd, L: out.Where, R: pred}
		}
	}
	return out, nil
}

// expandVersionedStar expands `*` into plain references to the base
// columns of every FROM relation. The caller's transform pass then wraps
// the updatable ones in version CASEs.
func expandVersionedStar(s *Store, sel *sql.SelectStmt) ([]sql.SelectItem, error) {
	qualify := len(sel.From) > 1
	var items []sql.SelectItem
	for _, tr := range sel.From {
		b := tr.Binding()
		var schema *catalog.Schema
		if vt := s.lookup(tr.Table); vt != nil {
			schema = vt.ext.Base
		} else {
			tbl, err := s.d.Table(tr.Table)
			if err != nil {
				return nil, fmt.Errorf("core: expanding *: %w", err)
			}
			schema = tbl.Schema()
		}
		for _, c := range schema.Columns {
			items = append(items, sql.SelectItem{Expr: colRef(b, c.Name, qualify), Alias: c.Name})
		}
	}
	return items, nil
}

// colRef builds a column reference, qualified when the query has several
// range variables.
func colRef(binding, name string, qualify bool) *sql.ColumnRef {
	if qualify {
		return &sql.ColumnRef{Table: binding, Name: name}
	}
	return &sql.ColumnRef{Name: name}
}

func sessionRef() sql.Expr { return &sql.Param{Name: sessionParam} }

// versionCase builds the per-attribute CASE of §4.1/§5:
//
//	CASE WHEN :sessionVN >= tupleVN1 THEN A
//	     WHEN :sessionVN >= tupleVN2 THEN pre1_A
//	     ...
//	     ELSE pre(n-1)_A END
//
// Unused slots store tupleVN 0, which every session (VN >= 1) satisfies, so
// the chain naturally stops at the oldest recorded modification.
func versionCase(e *ExtTable, binding, col string, ord int, qualify bool) sql.Expr {
	n := e.L.N
	ce := &sql.CaseExpr{}
	tvn1, _ := slotColNames(n, 1)
	ce.Whens = append(ce.Whens, sql.WhenClause{
		Cond: &sql.BinaryExpr{
			Op: sql.OpGe,
			L:  sessionRef(),
			R:  colRef(binding, tvn1, qualify),
		},
		Result: colRef(binding, col, qualify),
	})
	for j := 2; j <= n-1; j++ {
		tvnj, _ := slotColNames(n, j)
		ce.Whens = append(ce.Whens, sql.WhenClause{
			Cond: &sql.BinaryExpr{
				Op: sql.OpGe,
				L:  sessionRef(),
				R:  colRef(binding, tvnj, qualify),
			},
			Result: colRef(binding, preColName(n, j-1, col), qualify),
		})
	}
	ce.Else = colRef(binding, preColName(n, n-1, col), qualify)
	return ce
}

// visibilityPredicate builds the WHERE conjunct of §4.1, generalized to
// nVNL:
//
//	(:s >= tupleVN1 AND operation1 <> 'delete')
//	OR (:s < tupleVN1 AND :s >= tupleVN2 AND operation1 <> 'insert')
//	OR ...
//	OR (:s < tupleVN(n-1) AND operation(n-1) <> 'insert')
//
// Arm j covers sessions reading the slot-j pre-update version (visible
// unless that slot's net operation was an insert); the first arm covers
// current-version readers (visible unless deleted).
func visibilityPredicate(e *ExtTable, binding string, qualify bool) sql.Expr {
	n := e.L.N
	lit := func(s string) sql.Expr { return &sql.Literal{Value: catalog.NewString(s)} }
	tvn := func(j int) sql.Expr {
		name, _ := slotColNames(n, j)
		return colRef(binding, name, qualify)
	}
	op := func(j int) sql.Expr {
		_, name := slotColNames(n, j)
		return colRef(binding, name, qualify)
	}
	and := func(l, r sql.Expr) sql.Expr { return &sql.BinaryExpr{Op: sql.OpAnd, L: l, R: r} }
	or := func(l, r sql.Expr) sql.Expr { return &sql.BinaryExpr{Op: sql.OpOr, L: l, R: r} }

	// Arm for case 1.
	pred := and(
		&sql.BinaryExpr{Op: sql.OpGe, L: sessionRef(), R: tvn(1)},
		&sql.BinaryExpr{Op: sql.OpNe, L: op(1), R: lit(string(OpDelete))},
	)
	// Arms for slots 1..n-1 as the pre-update source.
	for j := 1; j <= n-1; j++ {
		arm := and(
			&sql.BinaryExpr{Op: sql.OpLt, L: sessionRef(), R: tvn(j)},
			&sql.BinaryExpr{Op: sql.OpNe, L: op(j), R: lit(string(OpInsert))},
		)
		if j < n-1 {
			arm = and(arm, &sql.BinaryExpr{Op: sql.OpGe, L: sessionRef(), R: tvn(j + 1)})
		}
		pred = or(pred, arm)
	}
	return pred
}
