package core

import (
	"repro/internal/catalog"
	"repro/internal/storage"
)

// Journal receives every physical change a maintenance transaction makes,
// in order, plus transaction boundaries and DDL. The wal package implements
// it to provide durability; the hook lives here so core stays free of any
// dependency on the log format.
//
// The before image is always offered; a redo-only journal simply ignores
// it. That asymmetry is the point of §7: because a 2VNL tuple carries its
// own pre-update version, recovery never needs logged before-images — a
// conventional in-place engine would have to log them.
type Journal interface {
	// LogCreate records a versioned table's creation (base schema).
	LogCreate(base *catalog.Schema)
	// LogBegin records the start of maintenance transaction vn.
	LogBegin(vn VN)
	// LogInsert records a physical tuple insert (extended tuple).
	LogInsert(table string, rid storage.RID, after catalog.Tuple)
	// LogUpdate records an in-place physical update.
	LogUpdate(table string, rid storage.RID, before, after catalog.Tuple)
	// LogDelete records a physical delete.
	LogDelete(table string, rid storage.RID, before catalog.Tuple)
	// LogCommit records (and durably syncs) the transaction's commit.
	LogCommit(vn VN) error
	// LogAbort records the transaction's abort.
	LogAbort(vn VN)
}

// SetJournal installs a journal. It must be called before any table is
// created or maintenance begun; passing nil disables journaling.
func (s *Store) SetJournal(j Journal) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.journal = j
}

// journalOrNil returns the installed journal (may be nil).
func (s *Store) journalOrNil() Journal {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.journal
}

// SetCurrentVN installs a recovered version number. It is intended only
// for crash recovery (the wal package), which replays committed
// maintenance transactions and then advances the store to the highest
// committed VN; calling it with an active maintenance transaction or live
// sessions is invalid. In relation-backed mode a failed Version-relation
// write surfaces here rather than leaving the relation diverged from
// memory.
func (s *Store) SetCurrentVN(vn VN) error {
	s.mu.Lock()
	err := s.setGlobalsLocked(vn, false)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	// Recovery replays tuples straight into the engine, bypassing the
	// maintenance write path that maintains the per-table oldest-slot
	// watermarks — rebuild them from the recovered heaps.
	for _, vt := range s.Tables() {
		vt.recomputeOldestHW()
	}
	return nil
}
