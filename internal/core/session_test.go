package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/catalog"
	"repro/internal/db"
)

// TestSessionExpirationTimeline walks the 2VNL lifecycle of §2.1: a session
// survives the maintenance transaction that runs concurrently with it and
// the gap after that transaction commits, and expires the moment a second
// maintenance transaction begins.
func TestSessionExpirationTimeline(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	sess := s.BeginSession() // sessionVN = 1
	defer sess.Close()
	if sess.Expired() {
		t.Fatal("fresh session expired")
	}
	m := mustMaint(t, s) // t2 running
	if sess.Expired() {
		t.Fatal("session expired during its first overlapping maintenance transaction")
	}
	commit(t, m) // currentVN = 2
	if sess.Expired() {
		t.Fatal("session expired after one maintenance commit (should read the previous version)")
	}
	m = mustMaint(t, s) // t3 begins: version 1 expires
	if !sess.Expired() {
		t.Fatal("session must expire when a second maintenance transaction begins (§2.1)")
	}
	if err := sess.Check(); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("Check = %v", err)
	}
	if _, err := sess.Query(`SELECT k FROM kv`, nil); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("Query on expired session = %v", err)
	}
	commit(t, m)
	// A new session is fine.
	s2 := s.BeginSession()
	defer s2.Close()
	if s2.VN() != 3 || s2.Expired() {
		t.Errorf("new session VN=%d expired=%v", s2.VN(), s2.Expired())
	}
}

// TestNVNLSessionSurvivesMoreTransactions checks §5's guarantee: under
// nVNL a session survives overlapping up to n−1 maintenance transactions.
func TestNVNLSessionSurvivesMoreTransactions(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5} {
		s := newStore(t, n)
		if _, err := s.CreateTable(kvSchema()); err != nil {
			t.Fatal(err)
		}
		sess := s.BeginSession() // VN 1
		overlapped := 0
		for i := 0; ; i++ {
			m := mustMaint(t, s)
			if sess.Expired() {
				m.Rollback()
				break
			}
			overlapped++
			commit(t, m)
			if sess.Expired() {
				t.Errorf("n=%d: session expired after commit #%d; expiry should happen when the next txn begins", n, i+1)
				break
			}
			if overlapped > n {
				t.Fatalf("n=%d: session still alive after overlapping %d transactions", n, overlapped)
			}
		}
		if overlapped != n-1 {
			t.Errorf("n=%d: session overlapped %d maintenance transactions, want n-1 = %d", n, overlapped, n-1)
		}
		sess.Close()
	}
}

// TestSessionReadsStableAcrossMaintenance is the paper's motivating
// scenario (Example 2.1): an analyst's drill-down must agree with the
// earlier roll-up even while a maintenance transaction rewrites the data.
func TestSessionReadsStableAcrossMaintenance(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s).Close()
	sess := s.BeginSession() // VN 4
	defer sess.Close()

	total := func() int64 {
		rows, err := sess.Query(`SELECT SUM(total_sales) FROM DailySales WHERE city = 'San Jose' AND state = 'CA'`, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rows.Tuples[0][0].Int()
	}
	byLine := func() int64 {
		rows, err := sess.Query(`SELECT product_line, SUM(total_sales)
			FROM DailySales WHERE city = 'San Jose' AND state = 'CA'
			GROUP BY product_line`, nil)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, tu := range rows.Tuples {
			sum += tu[1].Int()
		}
		return sum
	}
	before := total()
	// Maintenance churns San Jose rows while the session is analyzing.
	m := mustMaint(t, s)
	if _, err := m.Exec(`UPDATE DailySales SET total_sales = total_sales + 5000 WHERE city = 'San Jose'`, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("DailySales", salesTuple(t, "San Jose", "skis", "10/16/96", 2000)); err != nil {
		t.Fatal(err)
	}
	if mid := total(); mid != before {
		t.Errorf("roll-up changed mid-session: %d -> %d", before, mid)
	}
	if drill := byLine(); drill != before {
		t.Errorf("drill-down (%d) does not add up to roll-up (%d) during maintenance", drill, before)
	}
	commit(t, m)
	// Still the same after commit (session reads the previous version).
	if after := total(); after != before {
		t.Errorf("roll-up changed after maintenance commit: %d -> %d", before, after)
	}
	// A new session sees the new state.
	s2 := s.BeginSession()
	defer s2.Close()
	rows, _ := s2.Query(`SELECT SUM(total_sales) FROM DailySales WHERE city = 'San Jose' AND state = 'CA'`, nil)
	if got := rows.Tuples[0][0].Int(); got != before+2*5000+2000 {
		t.Errorf("new session total = %d, want %d", got, before+10000+2000)
	}
}

// TestConcurrentReadersDuringMaintenance runs reader sessions concurrently
// with maintenance transactions that preserve an invariant (the sum over
// all tuples is constant), asserting every reader always observes the
// invariant — the serializability guarantee, with no locks anywhere.
func TestConcurrentReadersDuringMaintenance(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	const tuples = 20
	const invariantSum = int64(tuples * 100)
	m := mustMaint(t, s)
	for k := int64(0); k < tuples; k++ {
		if err := m.Insert("kv", kvTuple(k, 100)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)

	var readers, writer sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)

	// Writer: repeatedly moves value between pairs, preserving the sum.
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			m, err := s.BeginMaintenance()
			if err != nil {
				errCh <- err
				return
			}
			a := int64(i % tuples)
			b := int64((i + 7) % tuples)
			delta := int64(10)
			for _, kv := range []struct {
				k, d int64
			}{{a, -delta}, {b, +delta}} {
				kv := kv
				if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(kv.k)},
					func(c catalog.Tuple) catalog.Tuple {
						c[1] = catalog.NewInt(c[1].Int() + kv.d)
						return c
					}); err != nil {
					errCh <- err
					m.Rollback()
					return
				}
			}
			if err := m.Commit(); err != nil {
				errCh <- err
				return
			}
		}
	}()

	// Readers: every query within a session must see the invariant; a
	// session is retried fresh when it expires (expected behaviour).
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 300; i++ {
				sess := s.BeginSession()
				rows, err := sess.Query(`SELECT SUM(v), COUNT(*) FROM kv`, nil)
				if errors.Is(err, ErrSessionExpired) {
					sess.Close()
					continue
				}
				if err != nil {
					errCh <- err
					sess.Close()
					return
				}
				sum, count := rows.Tuples[0][0].Int(), rows.Tuples[0][1].Int()
				if sum != invariantSum || count != tuples {
					errCh <- errors.New("reader observed inconsistent state")
					sess.Close()
					return
				}
				sess.Close()
			}
		}()
	}
	readers.Wait() // the writer churns the whole time readers run
	close(stop)
	writer.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestVersionRelationMode runs the store with the single-tuple Version
// relation of §4 and checks the globals round-trip through the engine.
func TestVersionRelationMode(t *testing.T) {
	d := db.Open(db.Options{})
	s, err := Open(d, Options{VersionRelation: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	readVersionRel := func() (int64, bool) {
		rows, err := d.Query(`SELECT currentVN, maintenanceActive FROM Version`, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rows.Tuples[0][0].Int(), rows.Tuples[0][1].Bool()
	}
	if vn, active := readVersionRel(); vn != 1 || active {
		t.Fatalf("initial Version relation = (%d, %v)", vn, active)
	}
	m := mustMaint(t, s)
	if vn, active := readVersionRel(); vn != 1 || !active {
		t.Fatalf("Version relation during maintenance = (%d, %v)", vn, active)
	}
	if err := m.Insert("kv", kvTuple(1, 1)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	if vn, active := readVersionRel(); vn != 2 || active {
		t.Fatalf("Version relation after commit = (%d, %v)", vn, active)
	}
	if s.CurrentVN() != 2 {
		t.Errorf("CurrentVN = %d", s.CurrentVN())
	}
	sess := s.BeginSession()
	defer sess.Close()
	if sess.VN() != 2 {
		t.Errorf("sessionVN = %d", sess.VN())
	}
}

// TestSessionClosedAndGet covers Close semantics and the keyed Get path.
func TestSessionClosedAndGet(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s).Close()
	sess := s.BeginSession()
	key := catalog.Tuple{catalog.NewString("Berkeley"), catalog.NewString("CA"), catalog.NewString("racquetball"), date(t, "10/14/96")}
	tu, visible, err := sess.Get("DailySales", key)
	if err != nil || !visible || tu[4].Int() != 12000 {
		t.Fatalf("Get = %v %v %v", tu, visible, err)
	}
	// Missing key.
	_, visible, err = sess.Get("DailySales", catalog.Tuple{catalog.NewString("Nowhere"), catalog.NewString("CA"), catalog.NewString("x"), date(t, "10/14/96")})
	if err != nil || visible {
		t.Errorf("missing key = %v %v", visible, err)
	}
	// Unregistered table.
	if _, _, err := sess.Get("nope", key); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("unregistered Get err = %v", err)
	}
	if err := sess.Scan("nope", nil); !errors.Is(err, ErrNotRegistered) {
		t.Errorf("unregistered Scan err = %v", err)
	}
	sess.Close()
	sess.Close() // idempotent
	if err := sess.Check(); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("closed Check = %v", err)
	}
	if _, err := sess.Query(`SELECT city FROM DailySales`, nil); !errors.Is(err, ErrSessionClosed) {
		t.Errorf("closed Query = %v", err)
	}
	if s.ActiveSessions() != 0 {
		t.Errorf("ActiveSessions = %d", s.ActiveSessions())
	}
}

// TestQueryJoinVersionedWithPlainTable joins a versioned relation with an
// ordinary one; only the versioned side is rewritten.
func TestQueryJoinVersionedWithPlainTable(t *testing.T) {
	s := newStore(t, 2)
	setupFigure4(t, s).Close()
	if _, err := s.DB().Exec(`CREATE TABLE Regions (state VARCHAR(2), region VARCHAR(8), UNIQUE KEY(state))`, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.DB().Exec(`INSERT INTO Regions VALUES ('CA', 'west')`, nil); err != nil {
		t.Fatal(err)
	}
	sess := s.BeginSession() // VN 4
	defer sess.Close()
	rows, err := sess.Query(`SELECT r.region, SUM(d.total_sales)
		FROM DailySales d JOIN Regions r ON d.state = r.state
		GROUP BY r.region`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 1 || rows.Tuples[0][0].Str() != "west" {
		t.Fatalf("join:\n%s", rows)
	}
	// VN 4 view: 10000 + 1500 + 12000 (Novato deleted).
	if got := rows.Tuples[0][1].Int(); got != 23500 {
		t.Errorf("join sum = %d, want 23500", got)
	}
	// Star expansion over a versioned table yields base columns only.
	rows, err = sess.Query(`SELECT * FROM DailySales`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 5 {
		t.Errorf("star columns = %v (must hide bookkeeping columns)", rows.Columns)
	}
	for _, c := range rows.Columns {
		if c == colTupleVN || c == colOperation {
			t.Errorf("star leaked bookkeeping column %q", c)
		}
	}
}
