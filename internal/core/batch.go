package core

import (
	"fmt"
	"hash/fnv"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
)

// DeltaOp names the logical operation of one batch delta.
type DeltaOp int

const (
	DeltaInsert DeltaOp = iota
	DeltaUpdate
	DeltaDelete
)

func (op DeltaOp) String() string {
	switch op {
	case DeltaInsert:
		return "insert"
	case DeltaUpdate:
		return "update"
	case DeltaDelete:
		return "delete"
	default:
		return fmt.Sprintf("DeltaOp(%d)", int(op))
	}
}

// Delta is one logical operation of a maintenance batch, in the data-only
// form ApplyBatch can hash-partition: the target is named by unique key
// rather than by callback, so two deltas touching the same tuple are
// routable to the same partition.
type Delta struct {
	Table string
	Op    DeltaOp
	// Row is the full base tuple: the inserted row for DeltaInsert, the
	// complete new row for DeltaUpdate (non-updatable columns must keep
	// their current values, as in UpdateKey). Unused for DeltaDelete.
	Row catalog.Tuple
	// Key is the unique key of the target tuple for DeltaUpdate and
	// DeltaDelete. Unused for DeltaInsert, whose key comes from Row.
	Key catalog.Tuple
}

// BatchStats reports what one ApplyBatch call did.
type BatchStats struct {
	Deltas  int // deltas submitted
	Applied int // deltas folded into a tuple per Tables 2–4
	Missing int // updates/deletes whose key had no live tuple (skipped)
	// Partitions and Workers record the actual fan-out: one partition per
	// worker, after clamping to the batch size.
	Partitions int
	Workers    int
}

func (s *MaintStats) add(o MaintStats) {
	s.LogicalInserts += o.LogicalInserts
	s.LogicalUpdates += o.LogicalUpdates
	s.LogicalDeletes += o.LogicalDeletes
	s.PhysicalInserts += o.PhysicalInserts
	s.PhysicalUpdates += o.PhysicalUpdates
	s.PhysicalDeletes += o.PhysicalDeletes
	s.NetEffectFolds += o.NetEffectFolds
}

// routedDelta is a delta with its table resolved once during routing.
type routedDelta struct {
	d  Delta
	vt *VTable
}

// ApplyBatch applies a batch of logical operations with the store's
// configured worker count (Options.ApplyWorkers; 0 = GOMAXPROCS).
//
// The batch is hash-partitioned by (table, unique key) so that every
// operation on one tuple lands in the same partition, in submission order.
// Partitions apply concurrently; within a partition the Tables 2–4 folding
// runs exactly as the sequential Insert/UpdateKey/DeleteKey calls would, so
// multi-touch net effects (second rows of Tables 2–4) are preserved. The
// outcome is observationally identical to ApplyBatchSeq on the same batch —
// the property pinned by the differential suite in parallel_diff_test.go.
//
// On a worker error the batch stops early and the transaction is poisoned:
// Commit refuses and the caller must Rollback. A failed parallel batch may
// have journaled a physical delete that never executed (see
// applier.physDelete), so the abort record written by Rollback is what keeps
// recovery consistent.
func (m *Maintenance) ApplyBatch(deltas []Delta) (BatchStats, error) {
	return m.ApplyBatchWorkers(deltas, m.store.applyWorkers)
}

// ApplyBatchSeq applies the batch strictly sequentially on the caller's
// goroutine — the oracle the parallel path is differentially tested
// against. It shares the routing step with ApplyBatchWorkers, and applying
// its single partition is identical to a loop of Insert/UpdateKey/DeleteKey
// calls.
func (m *Maintenance) ApplyBatchSeq(deltas []Delta) (BatchStats, error) {
	return m.ApplyBatchWorkers(deltas, 1)
}

// ApplyBatchWorkers is ApplyBatch with an explicit worker count. workers <=
// 0 selects GOMAXPROCS; 1 is the sequential path; the count is clamped to
// the batch size.
func (m *Maintenance) ApplyBatchWorkers(deltas []Delta, workers int) (BatchStats, error) {
	if err := m.checkActive(); err != nil {
		return BatchStats{}, err
	}
	if m.broken != nil {
		return BatchStats{}, fmt.Errorf("core: batch refused after failed parallel batch: %w", m.broken)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	workers = max(min(workers, len(deltas)), 1)
	start := time.Now()
	stats := BatchStats{Deltas: len(deltas), Partitions: workers, Workers: workers}
	parts, err := m.route(deltas, workers)
	if err != nil {
		return stats, err
	}
	mm := m.met()
	mm.batchApplies.Inc()
	mm.batchDeltas.Add(int64(len(deltas)))
	defer mm.batchNS.ObserveSince(start)
	if workers == 1 {
		for _, rd := range parts[0] {
			ok, err := m.ap.applyDelta(rd.vt, rd.d)
			if err != nil {
				return stats, err
			}
			if ok {
				stats.Applied++
			} else {
				stats.Missing++
			}
		}
		return stats, nil
	}
	return m.applyParallel(parts, stats)
}

// applyParallel runs one goroutine per partition, each on a private
// applier, and merges the appliers into the transaction root after the
// join.
func (m *Maintenance) applyParallel(parts [][]routedDelta, stats BatchStats) (BatchStats, error) {
	workers := len(parts)
	appliers := make([]*applier, workers)
	applied := make([]int, workers)
	missing := make([]int, workers)
	var (
		wg       sync.WaitGroup
		stop     atomic.Bool
		errMu    sync.Mutex
		firstErr error
		panicked any
	)
	// The journal is captured once, outside the worker loop: workers must
	// never touch the store latch (a per-op journalOrNil would serialize
	// them on it, and holding it from a pool goroutine would violate the §3
	// latch discipline vnlvet enforces).
	j := m.store.journalOrNil()
	for w := range parts {
		a := &applier{m: m, par: true, j: j, hwDeferred: make(map[*VTable]struct{})}
		appliers[w] = a
		wg.Add(1)
		go func(w int, a *applier) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errMu.Lock()
					if panicked == nil {
						panicked = r
					}
					errMu.Unlock()
					stop.Store(true)
				}
			}()
			if m.batchPartStart != nil {
				m.batchPartStart(w)
			}
			if m.batchPartDone != nil {
				defer m.batchPartDone(w)
			}
			for _, rd := range parts[w] {
				if stop.Load() {
					return
				}
				ok, err := a.applyDelta(rd.vt, rd.d)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					stop.Store(true)
					return
				}
				if ok {
					applied[w]++
				} else {
					missing[w]++
				}
			}
		}(w, a)
	}
	wg.Wait()
	// Merge worker state into the root applier before any error handling:
	// Rollback must see every undo record even when the batch failed, and
	// Stats/Commit read the root's counters. Same-key operations share a
	// partition, so there is still at most one undo record per tuple and
	// merge order does not matter.
	hw := make(map[*VTable]struct{})
	for w, a := range appliers {
		m.ap.stats.add(a.stats)
		m.ap.undo = append(m.ap.undo, a.undo...)
		for vt := range a.hwDeferred {
			hw[vt] = struct{}{}
		}
		stats.Applied += applied[w]
		stats.Missing += missing[w]
	}
	// Deferred watermark recomputes, now that the pool has joined and this
	// goroutine is the single writer again.
	for vt := range hw {
		vt.recomputeOldestHW()
	}
	if panicked != nil {
		// A worker panicked — in the fault-injection harness this is an
		// injected crash point that must unwind the caller, not the pool
		// goroutine. Re-raise with the original value so vfs.Recovering
		// still recognizes it.
		panic(panicked)
	}
	if firstErr != nil {
		m.broken = firstErr
		return stats, firstErr
	}
	return stats, nil
}

// route resolves each delta's table and splits the batch into parts
// hash-partitions, preserving submission order within each partition.
func (m *Maintenance) route(deltas []Delta, parts int) ([][]routedDelta, error) {
	vts := make(map[string]*VTable)
	out := make([][]routedDelta, parts)
	for i, d := range deltas {
		vt, ok := vts[d.Table]
		if !ok {
			var err error
			vt, err = m.table(d.Table)
			if err != nil {
				return nil, err
			}
			vts[d.Table] = vt
		}
		p, err := partitionOf(vt, d, i, parts)
		if err != nil {
			return nil, err
		}
		out[p] = append(out[p], routedDelta{d: d, vt: vt})
	}
	return out, nil
}

// partitionOf routes one delta. All operations on one (table, key) pair map
// to the same partition — the invariant that lets partitions run
// concurrently without reordering any tuple's Tables 2–4 sequence.
func partitionOf(vt *VTable, d Delta, i, parts int) (int, error) {
	return PartitionDelta(vt.ext.Base, d, i, parts)
}

// PartitionDelta is the batch partitioning rule, exported for the shard
// router: it routes one delta to a partition in [0, parts) by the
// (table, unique key) hash, with i (the delta's batch index) breaking the
// tie for keyless inserts. The shard router and the in-store worker
// fan-out share this single function, so a delta lands on the same shard
// the parallel applier would have picked — the property the sharded ≡
// single-store differential suite leans on.
func PartitionDelta(base *catalog.Schema, d Delta, i, parts int) (int, error) {
	var key catalog.Tuple
	switch d.Op {
	case DeltaInsert:
		if !base.HasKey() || len(d.Row) != len(base.Columns) {
			// Keyless inserts cannot conflict with anything (and a
			// wrong-arity row is rejected by the applier wherever it runs):
			// spread them round-robin.
			return i % parts, nil
		}
		key = coerceKey(base, base.KeyOf(d.Row))
	case DeltaUpdate, DeltaDelete:
		if !base.HasKey() {
			return 0, fmt.Errorf("core: batch %s of keyless table %s needs UpdateWhere/DeleteWhere", d.Op, base.Name)
		}
		key = coerceKey(base, d.Key)
	default:
		return 0, fmt.Errorf("core: unknown batch delta operation %v", d.Op)
	}
	h := fnv.New64a()
	h.Write([]byte(base.Name))
	return int((h.Sum64() ^ catalog.HashTuple(key)) % uint64(parts)), nil
}

// coerceKey normalizes key values to the key columns' declared types, so
// two spellings of one key (an Int and a coercible Float, say) hash to the
// same partition — matching the equality the engine's key index applies.
// Values that do not coerce are hashed raw; they cannot match a live tuple,
// so their partition only needs to be deterministic.
func coerceKey(base *catalog.Schema, key catalog.Tuple) catalog.Tuple {
	if len(key) != len(base.Key) {
		return key
	}
	out := make(catalog.Tuple, len(key))
	for i, v := range key {
		out[i] = v
		if v.IsNull() {
			continue
		}
		if cv, err := catalog.Coerce(v, base.Columns[base.Key[i]].Type); err == nil {
			out[i] = cv
		}
	}
	return out
}

// applyDelta applies one routed delta, mirroring the sequential
// Insert/UpdateKey/DeleteKey paths exactly: updates and deletes of a key
// with no live tuple are skipped, not errors.
func (a *applier) applyDelta(vt *VTable, d Delta) (bool, error) {
	switch d.Op {
	case DeltaInsert:
		return true, a.insert(vt, d.Row)
	case DeltaUpdate, DeltaDelete:
		rid, ok := vt.tbl.SearchKey(d.Key)
		if !ok {
			return false, nil
		}
		ext, err := vt.tbl.Get(rid)
		if err != nil {
			return false, nil
		}
		if _, visible := vt.ext.CurrentVersion(ext); !visible {
			return false, nil
		}
		if d.Op == DeltaUpdate {
			return true, a.applyUpdate(vt, rid, ext, d.Row)
		}
		return true, a.applyDelete(vt, rid, ext)
	default:
		return false, fmt.Errorf("core: unknown batch delta operation %v", d.Op)
	}
}
