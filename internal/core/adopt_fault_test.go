package core

import (
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/storage"
	"repro/internal/vfs"
)

// adoptFixture builds a plain (unversioned) 30-row table on a fresh
// FaultFS driven by script, sized so the one-page pool must evict — and
// write back — continuously while AdoptTable copies rows into the
// versioned temp heap.
func adoptFixture(t *testing.T, script *vfs.Script) (*vfs.FaultFS, *db.Database, *Store) {
	t.Helper()
	fs := vfs.NewFaultFS(script)
	d := db.Open(db.Options{DataFS: fs, DataDir: "data", PoolPages: 1, PageSize: 256})
	s, err := Open(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	schema := catalog.MustSchema("plain", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	}, "k")
	tbl, err := d.CreateTable(schema)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(1); k <= 30; k++ {
		if _, err := tbl.Insert(catalog.Tuple{catalog.NewInt(k), catalog.NewInt(k)}); err != nil {
			t.Fatal(err)
		}
	}
	return fs, d, s
}

// TestAdoptTableHeapFaultMidLoad injects write failures on the versioned
// temp heap's eviction write-backs while AdoptTable is mid-copy: the
// adoption must fail cleanly — original table registered and fully
// readable, no half-adopted versioned table, no leaked __adopting temp —
// and the same adoption must succeed once the hardware heals.
//
// The failing op index is found by rehearsal, not hard-coded: a clean run
// records the I/O trace, and the fault is aimed at the first write-back of
// the __adopting heap. The workload is deterministic, so the index holds.
func TestAdoptTableHeapFaultMidLoad(t *testing.T) {
	// Rehearsal: clean adoption, to locate the temp heap's first
	// write-back in the op stream.
	rehearsalFS, _, rehearsalStore := adoptFixture(t, nil)
	if _, err := rehearsalStore.AdoptTable("plain"); err != nil {
		t.Fatalf("clean adoption failed: %v", err)
	}
	target := 0
	for _, r := range rehearsalFS.Trace() {
		if strings.HasPrefix(r.Site, "writeat data/plain__adopting.heap") {
			target = r.Index
			break
		}
	}
	if target == 0 {
		for _, r := range rehearsalFS.Trace() {
			t.Logf("op %3d: %s", r.Index, r.Site)
		}
		t.Fatal("clean adoption performed no temp-heap write-backs; shrink the pool or grow the table")
	}

	// The real run: every heap write from the first temp write-back on
	// fails (the range also covers the cleanup drop's I/O).
	script := vfs.NewScript().AddFaultRange(target, target+200, vfs.FaultErr)
	fs, d, s := adoptFixture(t, script)
	if _, err := s.AdoptTable("plain"); err == nil {
		t.Fatal("AdoptTable succeeded despite the temp heap's write-backs failing")
	}

	// The failure is clean: no versioned registration, no leaked temp
	// table, and the original rows are all still readable.
	if _, err := s.Table("plain"); err == nil {
		t.Fatal("failed adoption left a versioned table registered")
	}
	if _, err := d.TableOf("plain__adopting"); err == nil {
		t.Fatal("failed adoption leaked the __adopting temp table")
	}
	orig, err := d.TableOf("plain")
	if err != nil {
		t.Fatalf("original table lost after failed adoption: %v", err)
	}
	rows := 0
	orig.Scan(func(_ storage.RID, _ catalog.Tuple) bool { rows++; return true })
	if rows != 30 {
		t.Fatalf("original table has %d readable rows after failed adoption, want 30", rows)
	}

	// Healthy hardware: the retry adopts all 30 rows.
	fs.SetScript(nil)
	vt, err := s.AdoptTable("plain")
	if err != nil {
		t.Fatalf("retry adoption: %v", err)
	}
	sess := s.BeginSession()
	defer sess.Close()
	rows = 0
	if err := sess.Scan("plain", func(_ catalog.Tuple) bool { rows++; return true }); err != nil {
		t.Fatal(err)
	}
	if rows != 30 {
		t.Fatalf("adopted table scans %d rows, want 30", rows)
	}
	if vt.Base().Name != "plain" {
		t.Fatalf("adopted table named %q, want plain", vt.Base().Name)
	}
}
