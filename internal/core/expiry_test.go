package core

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
)

// TestPerTupleExpiryOutlivesGlobalCheck demonstrates §3.2's two expiration
// alternatives. After the sessions begin, one maintenance transaction
// touches the cold table (reconstructible: its tuples carry tupleVN =
// sessionVN+1), and later transactions churn only a hot table. The global
// check expires any session that overlapped two transactions regardless of
// what they touched; the per-tuple discipline keeps the session serving
// correct answers over the cold table because every cold tuple is still
// reconstructible.
func TestPerTupleExpiryOutlivesGlobalCheck(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	hotSchema := catalog.MustSchema("hot", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	}, "k")
	if _, err := s.CreateTable(hotSchema); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	for k := int64(0); k < 4; k++ {
		if err := m.Insert("kv", kvTuple(k, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Insert("hot", kvTuple(1, 1)); err != nil {
		t.Fatal(err)
	}
	commit(t, m) // currentVN = 2

	global := s.BeginSession()
	optim := s.BeginSessionPerTupleExpiry()
	defer global.Close()
	defer optim.Close()

	churn := func(table string, k, v int64) {
		m := mustMaint(t, s)
		if _, err := m.UpdateKey(table, catalog.Tuple{catalog.NewInt(k)},
			func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewInt(v); return c }); err != nil {
			t.Fatal(err)
		}
		commit(t, m)
	}
	// VN 3 touches the cold table once (tupleVN = 3 = sessionVN+1, still
	// reconstructible for sessionVN 2); VN 4 and 5 churn only `hot`.
	churn("kv", 1, 111)
	churn("hot", 1, 2)
	churn("hot", 1, 3)

	// The global check has expired (three txns overlapped)...
	if err := global.Check(); !errors.Is(err, ErrSessionExpired) {
		t.Fatalf("global-check session: %v, want expired", err)
	}
	// ...but the per-tuple session still reads a correct version-2 state
	// of the cold table — including the pre-update value of the touched
	// tuple.
	rows, err := optim.Query(`SELECT SUM(v), COUNT(*) FROM kv`, nil)
	if err != nil {
		t.Fatalf("per-tuple query: %v", err)
	}
	if rows.Tuples[0][0].Int() != 400 || rows.Tuples[0][1].Int() != 4 {
		t.Errorf("per-tuple view = %v, want the version-2 state (400/4)", rows.Tuples[0])
	}
	// A second touch of the cold table's tuple makes it unreconstructible
	// for the session: now the per-tuple discipline expires too.
	churn("kv", 1, 112)
	if _, err := optim.Query(`SELECT SUM(v) FROM kv`, nil); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("per-tuple query after double-touch: %v, want expired", err)
	}
	if err := optim.Check(); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("per-tuple Check after double-touch: %v, want expired", err)
	}
}

// TestPerTupleExpiryQueryScopedProbe: the query path probes only the
// tables the query touches, so churn in another table does not expire a
// query over a cold one.
func TestPerTupleExpiryQueryScopedProbe(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	hot := catalog.MustSchema("hot", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	}, "k")
	if _, err := s.CreateTable(hot); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("hot", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	sess := s.BeginSessionPerTupleExpiry()
	defer sess.Close()
	// Hammer the hot table twice.
	for i := 0; i < 2; i++ {
		m := mustMaint(t, s)
		if _, err := m.UpdateKey("hot", catalog.Tuple{catalog.NewInt(1)},
			func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewInt(int64(i)); return c }); err != nil {
			t.Fatal(err)
		}
		commit(t, m)
	}
	// Queries over the cold table still succeed...
	if _, err := sess.Query(`SELECT v FROM kv`, nil); err != nil {
		t.Errorf("cold-table query: %v", err)
	}
	// ...while queries touching the hot table report expiration.
	if _, err := sess.Query(`SELECT v FROM hot`, nil); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("hot-table query: %v, want expired", err)
	}
	// The full Check (all tables) is expired.
	if err := sess.Check(); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("Check: %v, want expired", err)
	}
}

// TestDimensionTableNoUpdatableColumns: warehouses also hold dimension
// tables whose attributes never change — rows are only inserted and
// deleted. The 2VNL extension then adds no pre-update columns at all
// (overhead = 5 bytes of bookkeeping), the rewrite adds only the
// visibility predicate, and maintenance updates are correctly rejected.
func TestDimensionTableNoUpdatableColumns(t *testing.T) {
	s := newStore(t, 2)
	dim := catalog.MustSchema("Stores", []catalog.Column{
		{Name: "store_id", Type: catalog.TypeInt, Length: 4},
		{Name: "city", Type: catalog.TypeString, Length: 20},
	}, "store_id")
	vt, err := s.CreateTable(dim)
	if err != nil {
		t.Fatal(err)
	}
	base, ext, _ := vt.Ext().Overhead()
	if ext-base != 5 { // tupleVN(4) + operation(1), no pre-update columns
		t.Errorf("dimension overhead = %d bytes, want 5", ext-base)
	}
	m := mustMaint(t, s)
	if err := m.Insert("Stores", catalog.Tuple{catalog.NewInt(1), catalog.NewString("San Jose")}); err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("Stores", catalog.Tuple{catalog.NewInt(2), catalog.NewString("Berkeley")}); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	sess := s.BeginSession() // VN 2
	defer sess.Close()

	m = mustMaint(t, s)
	// Updates of non-updatable columns are rejected...
	if _, err := m.UpdateKey("Stores", catalog.Tuple{catalog.NewInt(1)},
		func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewString("Oakland"); return c }); err == nil {
		t.Error("update of a non-updatable dimension column accepted")
	}
	// ...while logical deletes work and stay invisible to the session.
	if _, err := m.DeleteKey("Stores", catalog.Tuple{catalog.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	rows, err := sess.Query(`SELECT store_id, city FROM Stores ORDER BY store_id`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 2 {
		t.Errorf("VN-2 session sees %d stores, want 2 (delete is in VN 3)", rows.Len())
	}
	// The rewrite contains the visibility predicate but no CASE.
	rw, err := sess.Rewrite(`SELECT city FROM Stores`)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rw, "CASE") {
		t.Errorf("dimension rewrite contains CASE: %s", rw)
	}
	if !strings.Contains(rw, "operation <> 'delete'") {
		t.Errorf("dimension rewrite missing visibility predicate: %s", rw)
	}
	fresh := s.BeginSession()
	defer fresh.Close()
	rows, _ = fresh.Query(`SELECT COUNT(*) FROM Stores`, nil)
	if rows.Tuples[0][0].Int() != 1 {
		t.Errorf("VN-3 store count = %v", rows.Tuples[0])
	}
}

// TestPerTupleExpiryHonoursLoglessRollbackFloor: the optimistic discipline
// still respects the expire floor raised by a logless rollback.
func TestPerTupleExpiryHonoursLoglessRollbackFloor(t *testing.T) {
	s := newStore(t, 2)
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	commit(t, m) // VN 2
	// An older session (simulate VN 1).
	older := &Session{store: s, vn: 1, perTuple: true}
	s.sessions.add(older)
	defer older.Close()

	mb, err := s.BeginMaintenanceMode(RollbackLogless, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mb.UpdateKey("kv", catalog.Tuple{catalog.NewInt(1)},
		func(c catalog.Tuple) catalog.Tuple { c[1] = catalog.NewInt(99); return c }); err != nil {
		t.Fatal(err)
	}
	if err := mb.Rollback(); err != nil {
		t.Fatal(err)
	}
	if err := older.Check(); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("pre-floor per-tuple session: %v, want expired", err)
	}
	if _, err := older.Query(`SELECT v FROM kv`, nil); !errors.Is(err, ErrSessionExpired) {
		t.Errorf("pre-floor per-tuple query: %v, want expired", err)
	}
}
