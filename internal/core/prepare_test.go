package core

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/obs"
)

// prepStore builds a store on a private registry with kv preloaded: keys
// 0..9 at VN 2.
func prepStore(t *testing.T) (*Store, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s := newStore(t, 2, func(o *Options) { o.Metrics = reg })
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	for k := int64(0); k < 10; k++ {
		if err := m.Insert("kv", kvTuple(k, 100+k)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)
	return s, reg
}

// A prepared statement answers exactly like the ad-hoc path, at the
// session's pinned version, before and after a maintenance commit.
func TestPreparedMatchesAdHoc(t *testing.T) {
	s, _ := prepStore(t)
	p, err := s.Prepare(`SELECT k, v FROM kv WHERE k < 5 ORDER BY k`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}

	sess := s.BeginSession()
	defer sess.Close()
	want, err := sess.Query(`SELECT k, v FROM kv WHERE k < 5 ORDER BY k`, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.QueryPrepared(p, nil)
	if err != nil {
		t.Fatalf("QueryPrepared: %v", err)
	}
	if fmt.Sprint(got.Tuples) != fmt.Sprint(want.Tuples) {
		t.Fatalf("prepared answered %v, ad hoc %v", got.Tuples, want.Tuples)
	}

	// Maintenance commits under the open session; the prepared execution
	// must keep reading the session's original version.
	m := mustMaint(t, s)
	if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(1)},
		func(catalog.Tuple) catalog.Tuple { return kvTuple(1, 9999) }); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	after, err := sess.QueryPrepared(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(after.Tuples) != fmt.Sprint(want.Tuples) {
		t.Fatalf("prepared moved with maintenance: %v, want the session's original %v", after.Tuples, want.Tuples)
	}

	// A fresh session sees the new version through the same Prepared.
	sess2 := s.BeginSession()
	defer sess2.Close()
	fresh, err := sess2.QueryPrepared(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(fresh.Tuples) == fmt.Sprint(want.Tuples) {
		t.Fatalf("fresh session through the prepared plan did not see the committed update")
	}
}

// The cached rewrite survives maintenance commits (the rewrite is
// VN-independent) and is invalidated only when the table registry changes.
func TestPreparedCacheInvalidation(t *testing.T) {
	s, reg := prepStore(t)
	p, err := s.Prepare(`SELECT COUNT(*) FROM kv`)
	if err != nil {
		t.Fatal(err)
	}
	counts := func() (hits, misses int64) {
		snap := reg.Snapshot()
		return snap.Counters["core_prepared_rewrite_hits_total"],
			snap.Counters["core_prepared_rewrite_misses_total"]
	}
	query := func() {
		t.Helper()
		sess := s.BeginSession()
		defer sess.Close()
		if _, err := sess.QueryPrepared(p, nil); err != nil {
			t.Fatal(err)
		}
	}

	query() // first execution derives the rewrite
	if h, m := counts(); h != 0 || m != 1 {
		t.Fatalf("after first execution: hits=%d misses=%d, want 0/1", h, m)
	}
	query() // cached
	query()
	if h, m := counts(); h != 2 || m != 1 {
		t.Fatalf("after repeats: hits=%d misses=%d, want 2/1", h, m)
	}

	// A maintenance commit advances the VN but leaves the registry pointer
	// alone: still a cache hit.
	m := mustMaint(t, s)
	if err := m.Insert("kv", kvTuple(100, 1)); err != nil {
		t.Fatal(err)
	}
	commit(t, m)
	query()
	if h, mi := counts(); h != 3 || mi != 1 {
		t.Fatalf("after maintenance commit: hits=%d misses=%d, want 3/1", h, mi)
	}

	// Creating a table swaps the copy-on-write registry: the next execution
	// must re-derive against the new registry.
	if _, err := s.CreateTable(catalog.MustSchema("other", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
	}, "k")); err != nil {
		t.Fatal(err)
	}
	query()
	if h, mi := counts(); h != 3 || mi != 2 {
		t.Fatalf("after CreateTable: hits=%d misses=%d, want 3/2", h, mi)
	}
}

// Prepare rejects unparseable statements up front; a query over a table
// that does not exist parses (it could name a plain relation adopted later)
// and fails at execution instead.
func TestPrepareErrors(t *testing.T) {
	s, _ := prepStore(t)
	if _, err := s.Prepare(`SELEC nonsense`); err == nil {
		t.Fatal("Prepare accepted garbage SQL")
	}
	p, err := s.Prepare(`SELECT x FROM no_such_table`)
	if err != nil {
		t.Fatalf("Prepare rejected a syntactically valid query: %v", err)
	}
	sess := s.BeginSession()
	defer sess.Close()
	if _, err := sess.QueryPrepared(p, nil); err == nil {
		t.Fatal("executing over a missing table succeeded")
	}
}
