package core

import (
	"fmt"
	"testing"

	"repro/internal/catalog"
	"repro/internal/exec"
	"repro/internal/obs"
	"repro/internal/sql"
)

func planCounts(reg *obs.Registry) (hits, misses int64) {
	snap := reg.Snapshot()
	return snap.Counters["core_plan_cache_hits_total"],
		snap.Counters["core_plan_cache_misses_total"]
}

// Repeated ad-hoc query text is served from the plan cache: the first call
// misses (parse + rewrite + compile), later calls hit — by raw text through
// Session.Query and by canonical form through Session.QueryStmt.
func TestPlanCacheHitMiss(t *testing.T) {
	s, reg := prepStore(t)
	sess := s.BeginSession()
	defer sess.Close()

	const q = `SELECT k, v FROM kv WHERE k < 5`
	if _, err := sess.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	if h, m := planCounts(reg); h != 0 || m != 1 {
		t.Fatalf("after first query: hits=%d misses=%d, want 0/1", h, m)
	}
	for i := 0; i < 3; i++ {
		if _, err := sess.Query(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if h, m := planCounts(reg); h != 3 || m != 1 {
		t.Fatalf("after repeats: hits=%d misses=%d, want 3/1", h, m)
	}

	// A textual variant of the same statement (keyword case, whitespace)
	// shares the plan through the canonical key: no second compile.
	if _, err := sess.Query("select  k, v  from kv  where k < 5", nil); err != nil {
		t.Fatal(err)
	}
	if h, m := planCounts(reg); h != 4 || m != 1 {
		t.Fatalf("after variant spelling: hits=%d misses=%d, want 4/1", h, m)
	}

	// QueryStmt keys on the canonical form and hits too.
	sel, err := sql.ParseSelect(q)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.QueryStmt(sel, nil); err != nil {
		t.Fatal(err)
	}
	if h, m := planCounts(reg); h != 5 || m != 1 {
		t.Fatalf("after QueryStmt: hits=%d misses=%d, want 5/1", h, m)
	}

	// The cached plan for a single-table scan/filter/project over a
	// versioned relation is the vectorized one, not a fallback.
	e := s.plans.get(q, s.tables.Load())
	if e == nil {
		t.Fatal("raw text not in cache")
	}
	if !e.plan.Vectorized() {
		t.Fatal("cached plan is not vectorized")
	}
}

// CreateTable and AdoptTable publish a fresh table registry; every cached
// plan must be discarded (pointer-compare invalidation) and re-derived.
func TestPlanCacheInvalidation(t *testing.T) {
	s, reg := prepStore(t)
	sess := s.BeginSession()
	defer sess.Close()
	const q = `SELECT k FROM kv WHERE v > 0`
	query := func() {
		t.Helper()
		if _, err := sess.Query(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	query()
	query()
	if h, m := planCounts(reg); h != 1 || m != 1 {
		t.Fatalf("warmup: hits=%d misses=%d, want 1/1", h, m)
	}

	// Maintenance commits do not flip the registry: still a hit.
	mt := mustMaint(t, s)
	if err := mt.Insert("kv", kvTuple(500, 1)); err != nil {
		t.Fatal(err)
	}
	commit(t, mt)
	query()
	if h, m := planCounts(reg); h != 2 || m != 1 {
		t.Fatalf("after commit: hits=%d misses=%d, want 2/1", h, m)
	}

	// CreateTable flips the registry: miss, re-derive.
	if _, err := s.CreateTable(catalog.MustSchema("other", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
	}, "k")); err != nil {
		t.Fatal(err)
	}
	query()
	if h, m := planCounts(reg); h != 2 || m != 2 {
		t.Fatalf("after CreateTable: hits=%d misses=%d, want 2/2", h, m)
	}

	// AdoptTable flips it too — and the re-derived plan must now treat the
	// adopted table as versioned.
	plain := catalog.MustSchema("plain", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	}, "k")
	pt, err := s.DB().CreateTable(plain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pt.Insert(kvTuple(1, 10)); err != nil {
		t.Fatal(err)
	}
	// Cache a plan over the plain table, then adopt it.
	sessQ := func(text string) *exec.Rows {
		t.Helper()
		rows, err := sess.Query(text, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rows
	}
	before := sessQ(`SELECT k, v FROM plain`)
	if before.Len() != 1 {
		t.Fatalf("plain rows = %d, want 1", before.Len())
	}
	if _, err := s.AdoptTable("plain"); err != nil {
		t.Fatal(err)
	}
	h0, m0 := planCounts(reg)
	after := sessQ(`SELECT k, v FROM plain`)
	h1, m1 := planCounts(reg)
	if h1 != h0 || m1 != m0+1 {
		t.Fatalf("adoption did not invalidate: hits %d→%d misses %d→%d", h0, h1, m0, m1)
	}
	// The adopted table reads identically through the re-derived (now
	// version-rewritten) plan.
	if fmt.Sprint(after.Tuples) != fmt.Sprint(before.Tuples) {
		t.Fatalf("adopted read %v, want %v", after.Tuples, before.Tuples)
	}
}

// PlanCacheSize < 0 disables the cache: the legacy parse-and-rewrite path
// answers every call and the counters never move.
func TestPlanCacheDisabled(t *testing.T) {
	reg := obs.NewRegistry()
	s := newStore(t, 2, func(o *Options) { o.Metrics = reg; o.PlanCacheSize = -1 })
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	m := mustMaint(t, s)
	for k := int64(0); k < 10; k++ {
		if err := m.Insert("kv", kvTuple(k, 100+k)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)
	sess := s.BeginSession()
	defer sess.Close()
	const q = `SELECT k, v FROM kv WHERE v < 105`
	rows, err := sess.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rows.Len() != 5 {
		t.Fatalf("rows = %d, want 5", rows.Len())
	}
	if _, err := sess.Query(q, nil); err != nil {
		t.Fatal(err)
	}
	if h, mi := planCounts(reg); h != 0 || mi != 0 {
		t.Fatalf("disabled cache moved counters: hits=%d misses=%d", h, mi)
	}
	if s.plans != nil {
		t.Fatal("plan cache allocated despite PlanCacheSize = -1")
	}
}

// legacyQuery is the pre-cache oracle: fresh rewrite, tree-walking executor,
// at the session's version.
func legacyQuery(t *testing.T, sess *Session, text string, params exec.Params) (*exec.Rows, error) {
	t.Helper()
	sel, err := sql.ParseSelect(text)
	if err != nil {
		t.Fatalf("parse %q: %v", text, err)
	}
	rw, err := RewriteSelect(sess.store, sel)
	if err != nil {
		return nil, err
	}
	return exec.Select(queryCatalog{sess.store}, rw, withSessionVN(params, sess.vn))
}

// The cached/vectorized pipeline is pinned against the per-call rewrite +
// tree-walking oracle across a multi-version history: sessions at three
// different VNs, tuples with mixed slot states (inserted, updated, deleted
// at different versions), so batches split between the case-1 fast variant
// and the full CASE reconstruction.
func TestQueryDifferentialAcrossVersions(t *testing.T) {
	s := newStore(t, 4) // nVNL so three sessions stay reconstructible
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	// VN 1→2: keys 0..99.
	m := mustMaint(t, s)
	for k := int64(0); k < 100; k++ {
		if err := m.Insert("kv", kvTuple(k, 100+k)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)
	sessA := s.BeginSession()
	defer sessA.Close()

	// VN 2→3: update a third, delete a few, insert new keys.
	m = mustMaint(t, s)
	for k := int64(0); k < 100; k += 3 {
		if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(k)},
			func(catalog.Tuple) catalog.Tuple { return kvTuple(k, 1000+k) }); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(5); k < 100; k += 20 {
		if _, err := m.DeleteKey("kv", catalog.Tuple{catalog.NewInt(k)}); err != nil {
			t.Fatal(err)
		}
	}
	for k := int64(200); k < 220; k++ {
		if err := m.Insert("kv", kvTuple(k, k)); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)
	sessB := s.BeginSession()
	defer sessB.Close()

	// VN 3→4: touch a different slice.
	m = mustMaint(t, s)
	for k := int64(1); k < 100; k += 7 {
		if _, err := m.UpdateKey("kv", catalog.Tuple{catalog.NewInt(k)},
			func(old catalog.Tuple) catalog.Tuple { return kvTuple(k, old[1].Int()+5) }); err != nil {
			t.Fatal(err)
		}
	}
	commit(t, m)
	sessC := s.BeginSession()
	defer sessC.Close()

	queries := []string{
		`SELECT * FROM kv`,
		`SELECT k, v FROM kv WHERE v < 150`,
		`SELECT k FROM kv WHERE v >= 1000`,
		`SELECT k, v + 1 FROM kv WHERE k >= 10 AND k < 60`,
		`SELECT v FROM kv WHERE k = :k`,
		`SELECT k FROM kv WHERE v BETWEEN 120 AND 140 LIMIT 5`,
		`SELECT COUNT(*) FROM kv`,
		`SELECT k, v FROM kv WHERE v <> 0 ORDER BY v, k LIMIT 9`,
		`SELECT CASE WHEN v < 150 THEN 'lo' ELSE 'hi' END FROM kv WHERE k < 20`,
	}
	params := exec.Params{"k": catalog.NewInt(33)}
	for _, sess := range []*Session{sessA, sessB, sessC} {
		for _, q := range queries {
			want, werr := legacyQuery(t, sess, q, params)
			got, gerr := sess.Query(q, params)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("vn=%d %q: oracle err=%v, cached err=%v", sess.VN(), q, werr, gerr)
			}
			if werr != nil {
				continue
			}
			if fmt.Sprint(got.Columns) != fmt.Sprint(want.Columns) {
				t.Fatalf("vn=%d %q: columns %v vs %v", sess.VN(), q, got.Columns, want.Columns)
			}
			if fmt.Sprint(got.Tuples) != fmt.Sprint(want.Tuples) {
				t.Fatalf("vn=%d %q:\ncached: %v\noracle: %v", sess.VN(), q, got.Tuples, want.Tuples)
			}
		}
	}

	// The per-tuple (optimistic expiry) sessions run the same cached plans.
	sessP := s.BeginSessionPerTupleExpiry()
	defer sessP.Close()
	for _, q := range queries {
		want, werr := legacyQuery(t, sessP, q, params)
		got, gerr := sessP.Query(q, params)
		if (werr == nil) != (gerr == nil) || (werr == nil && fmt.Sprint(got.Tuples) != fmt.Sprint(want.Tuples)) {
			t.Fatalf("per-tuple %q diverged: %v / %v vs %v / %v", q, got, gerr, want, werr)
		}
	}
}

// The cache stays bounded: filling it past the limit evicts rather than
// growing without bound.
func TestPlanCacheBounded(t *testing.T) {
	s := newStore(t, 2, func(o *Options) { o.PlanCacheSize = 8 })
	if _, err := s.CreateTable(kvSchema()); err != nil {
		t.Fatal(err)
	}
	sess := s.BeginSession()
	defer sess.Close()
	for i := 0; i < 50; i++ {
		q := fmt.Sprintf(`SELECT k FROM kv WHERE v = %d`, i)
		if _, err := sess.Query(q, nil); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.plans.size(); n > 8 {
		t.Fatalf("cache grew to %d entries, bound is 8", n)
	}
}
