// Package core implements 2VNL — the two-version no-locking concurrency
// control algorithm of Quass & Widom, "On-Line Warehouse View Maintenance"
// (SIGMOD 1997) — and its nVNL generalization (§5), layered on the embedded
// relational engine in internal/db exactly as the paper layers it on a
// conventional DBMS (§4): by extending relation schemas and rewriting
// queries, with no changes to the engine's concurrency control or storage.
//
// The algorithm in one paragraph: each tuple carries tupleVN (the version
// number of the last maintenance transaction to modify it), operation (the
// net logical operation — insert, update, or delete — that transaction
// performed on it), and a pre-update copy of every updatable attribute.
// Readers capture sessionVN = currentVN when their session begins and
// reconstruct each tuple as of that version (Table 1); the single
// maintenance transaction runs at maintenanceVN = currentVN+1 and folds its
// logical operations into the tuples so both versions stay available
// (Tables 2–4). Nobody places locks: readers run at READ UNCOMMITTED and
// the writer's mutations are protected only by the storage layer's
// short-duration page latches. nVNL stacks n−1 back-versions per tuple so a
// session survives up to n−1 maintenance transactions.
package core

import (
	"errors"
	"fmt"
)

// VN is a database version number. currentVN starts at 1 and each committed
// maintenance transaction increments it.
type VN int64

// Op is the logical operation recorded in a tuple's operation attribute.
type Op string

// Logical operations. The stored value is the net effect of all operations
// a maintenance transaction performed on the tuple (§3.3): e.g. an insert
// followed by an update in the same transaction nets to insert.
const (
	OpNone   Op = ""
	OpInsert Op = "insert"
	OpUpdate Op = "update"
	OpDelete Op = "delete"
)

// Errors reported by the 2VNL layer.
var (
	// ErrSessionExpired is returned when a reader session has overlapped
	// more maintenance transactions than the version store can reconstruct
	// (more than n−1). The reader must begin a new session (§2.1).
	ErrSessionExpired = errors.New("core: reader session expired; begin a new session")
	// ErrSessionClosed is returned when using a closed session.
	ErrSessionClosed = errors.New("core: session is closed")
	// ErrMaintenanceActive is returned by BeginMaintenance when a
	// maintenance transaction is already running. The paper assumes an
	// external protocol serializes maintenance transactions (§2.2); this
	// implementation enforces it.
	ErrMaintenanceActive = errors.New("core: a maintenance transaction is already active")
	// ErrMaintenanceDone is returned when operating on a committed or
	// aborted maintenance transaction.
	ErrMaintenanceDone = errors.New("core: maintenance transaction already finished")
	// ErrInvalidMaintenanceOp is returned for operation sequences the
	// decision tables mark impossible: updating or deleting a
	// logically-deleted tuple, or inserting a key that is live.
	ErrInvalidMaintenanceOp = errors.New("core: invalid maintenance operation")
	// ErrNotRegistered is returned when a table name is not managed by the
	// version store.
	ErrNotRegistered = errors.New("core: table not registered with the version store")
)

func (o Op) valid() bool { return o == OpInsert || o == OpUpdate || o == OpDelete }

func opOf(s string) (Op, error) {
	o := Op(s)
	if !o.valid() && o != OpNone {
		return OpNone, fmt.Errorf("core: unknown operation %q", s)
	}
	return o, nil
}
