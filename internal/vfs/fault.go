package vfs

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
)

// ErrInjected is the base error every scripted fault wraps.
var ErrInjected = errors.New("vfs: injected fault")

// CrashPoint is the panic value raised when a script's CrashAt operation
// is reached: the simulated kernel panic / power button. The crash fires
// *before* the operation executes, so crashing at op i leaves exactly the
// effects of ops 1..i−1 in the page cache (and whatever honest syncs made
// durable). The harness recovers it with Recovering.
type CrashPoint struct {
	Op   int    // the persisting-op index that did not execute
	Site string // "write data/wal.log 37B"-style description
}

func (c *CrashPoint) Error() string {
	return fmt.Sprintf("vfs: crash before persisting op %d (%s)", c.Op, c.Site)
}

// Recovering runs fn, converting a CrashPoint panic into a return value.
// Other panics propagate.
func Recovering(fn func() error) (crash *CrashPoint, err error) {
	defer func() {
		if p := recover(); p != nil {
			if cp, ok := p.(*CrashPoint); ok {
				crash = cp
				return
			}
			panic(p)
		}
	}()
	err = fn()
	return
}

// OpRecord traces one persisting operation, for failure reports: knowing
// that op 37 was "sync data/wal.log" is what turns a failing crash index
// into a debuggable scenario.
type OpRecord struct {
	Index int
	Site  string
}

// FaultFS is the deterministic in-memory fault-injecting filesystem. Every
// persisting operation (write, writeAt, truncate, sync, create, rename,
// remove) increments a global 1-based counter consulted against the
// Script: the scripted fault (if any) is applied, and reaching CrashAt
// panics with *CrashPoint before the operation runs. Reads count on a
// separate index for ReadErrs.
//
// Durability model: each file carries the written image (the OS page
// cache) and a durable image advanced only by honest Syncs. PowerCut
// resets every file to its durable image, plus Script.CutKeep extra
// unsynced bytes — a torn tail. Path operations (create, rename, remove)
// take effect durably at once, modelling a journalled filesystem that
// syncs directory metadata; content durability is the interesting axis
// for the WAL invariants.
type FaultFS struct {
	script *Script

	mu      sync.Mutex
	files   map[string]*memFile
	pOps    int // persisting-op counter
	rOps    int // read-op counter
	crashed bool
	trace   []OpRecord
}

// NewFaultFS returns a FaultFS driven by script (nil means fault-free,
// which still gives deterministic op counting and PowerCut semantics).
func NewFaultFS(script *Script) *FaultFS {
	if script == nil {
		script = NewScript()
	}
	return &FaultFS{script: script, files: map[string]*memFile{}}
}

// SetScript replaces the fault plan (nil installs an empty one). The crash
// harness uses it after a simulated power cut: the scripted faults covered
// the doomed run, and recovery is modelled as running on healthy hardware
// — its correctness must not depend on the old script's leftover indexes.
func (fs *FaultFS) SetScript(s *Script) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if s == nil {
		s = NewScript()
	}
	fs.script = s
}

// PersistOps returns how many persisting operations have executed (or been
// consumed by faults/crash) so far.
func (fs *FaultFS) PersistOps() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.pOps
}

// Crashed reports whether the scripted crash point fired.
func (fs *FaultFS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Trace returns the recorded persisting operations in order.
func (fs *FaultFS) Trace() []OpRecord {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]OpRecord, len(fs.trace))
	copy(out, fs.trace)
	return out
}

// PowerCut simulates losing power: every file's content reverts to its
// durable image plus any scripted CutKeep bytes of the unsynced tail.
// Outstanding handles remain usable (they see the cut content), but the
// intended use is to reopen files fresh, as recovery would.
func (fs *FaultFS) PowerCut() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for path, f := range fs.files {
		keep := len(f.durable)
		if extra := fs.script.CutKeep[path]; extra > 0 {
			keep += extra
		}
		if keep > len(f.data) {
			keep = len(f.data)
		}
		f.data = append([]byte(nil), f.data[:keep]...)
		f.durable = append([]byte(nil), f.data...)
	}
}

// ReadFile returns a copy of the current (page-cache) content of path —
// a test convenience.
func (fs *FaultFS) ReadFile(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("vfs: %s: %w", path, os.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

// DurableBytes returns a copy of the durable image of path.
func (fs *FaultFS) DurableBytes(path string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("vfs: %s: %w", path, os.ErrNotExist)
	}
	return append([]byte(nil), f.durable...), nil
}

// persistOp advances the op counter under fs.mu, records the trace entry,
// fires the crash point, and returns the scripted fault (if any).
func (fs *FaultFS) persistOp(site string) (Fault, bool) {
	fs.pOps++
	op := fs.pOps
	fs.trace = append(fs.trace, OpRecord{Index: op, Site: site})
	if fs.script.CrashAt == op && !fs.crashed {
		fs.crashed = true
		// The caller's deferred fs.mu.Unlock releases the lock as the
		// panic unwinds.
		panic(&CrashPoint{Op: op, Site: site})
	}
	f, ok := fs.script.Faults[op]
	return f, ok
}

func (fs *FaultFS) injected(site string, op int) error {
	return fmt.Errorf("%w: op %d (%s)", ErrInjected, op, site)
}

func (fs *FaultFS) Create(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	site := "create " + path
	if f, ok := fs.persistOp(site); ok && f.Kind == FaultErr {
		return nil, fs.injected(site, fs.pOps)
	}
	mf := fs.files[path]
	if mf == nil {
		mf = &memFile{fs: fs, path: path}
		fs.files[path] = mf
	}
	mf.data = nil
	mf.durable = nil
	return &handle{f: mf}, nil
}

func (fs *FaultFS) OpenAppend(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	mf := fs.files[path]
	if mf == nil {
		mf = &memFile{fs: fs, path: path}
		fs.files[path] = mf
	}
	return &handle{f: mf, appendMode: true}, nil
}

func (fs *FaultFS) Open(path string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	mf := fs.files[path]
	if mf == nil {
		return nil, fmt.Errorf("vfs: %s: %w", path, os.ErrNotExist)
	}
	return &handle{f: mf, readOnly: true}, nil
}

func (fs *FaultFS) Rename(oldPath, newPath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	site := fmt.Sprintf("rename %s -> %s", oldPath, newPath)
	if f, ok := fs.persistOp(site); ok && f.Kind == FaultErr {
		return fs.injected(site, fs.pOps)
	}
	mf := fs.files[oldPath]
	if mf == nil {
		return fmt.Errorf("vfs: %s: %w", oldPath, os.ErrNotExist)
	}
	delete(fs.files, oldPath)
	mf.path = newPath
	fs.files[newPath] = mf
	return nil
}

func (fs *FaultFS) Remove(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	site := "remove " + path
	if f, ok := fs.persistOp(site); ok && f.Kind == FaultErr {
		return fs.injected(site, fs.pOps)
	}
	if _, ok := fs.files[path]; !ok {
		return fmt.Errorf("vfs: %s: %w", path, os.ErrNotExist)
	}
	delete(fs.files, path)
	return nil
}

var _ FS = (*FaultFS)(nil)

// memFile is the shared per-path state; handle is one open descriptor.
// All fields are guarded by fs.mu.
type memFile struct {
	fs      *FaultFS
	path    string
	data    []byte // page-cache content
	durable []byte // content surviving a power cut
}

type handle struct {
	f          *memFile
	appendMode bool
	readOnly   bool
	off        int64 // sequential-write position (non-append handles)
	closed     bool
}

// writeAt applies p at off, honouring torn/short faults. Caller holds
// fs.mu.
func (h *handle) writeAt(p []byte, off int64, site string) (int, error) {
	fs := h.f.fs
	fault, ok := fs.persistOp(site)
	n := len(p)
	var ferr error
	if ok {
		switch fault.Kind {
		case FaultErr:
			return 0, fs.injected(site, fs.pOps)
		case FaultTorn:
			if fault.Keep < n {
				n = fault.Keep
			}
			ferr = fs.injected(site+" (torn)", fs.pOps)
		case FaultShort:
			if fault.Keep < n {
				n = fault.Keep
			}
			ferr = io.ErrShortWrite
		case FaultSyncLie:
			// Sync-only fault scripted on a write: ignore.
		}
	}
	end := off + int64(n)
	if grow := end - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	copy(h.f.data[off:end], p[:n])
	if ferr == nil && n < len(p) {
		ferr = io.ErrShortWrite
	}
	return n, ferr
}

func (h *handle) Write(p []byte) (int, error) {
	fs := h.f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if h.closed || h.readOnly {
		return 0, fmt.Errorf("vfs: %s: write on closed or read-only handle", h.f.path)
	}
	off := h.off
	if h.appendMode {
		off = int64(len(h.f.data))
	}
	site := fmt.Sprintf("write %s %dB", h.f.path, len(p))
	n, err := h.writeAt(p, off, site)
	if !h.appendMode {
		h.off = off + int64(n)
	}
	return n, err
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	fs := h.f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if h.closed || h.readOnly {
		return 0, fmt.Errorf("vfs: %s: write on closed or read-only handle", h.f.path)
	}
	site := fmt.Sprintf("writeat %s %dB@%d", h.f.path, len(p), off)
	return h.writeAt(p, off, site)
}

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	fs := h.f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if h.closed {
		return 0, fmt.Errorf("vfs: %s: read on closed handle", h.f.path)
	}
	fs.rOps++
	if fs.script.ReadErrs[fs.rOps] {
		return 0, fmt.Errorf("%w: read op %d (%s)", ErrInjected, fs.rOps, h.f.path)
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *handle) Sync() error {
	fs := h.f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if h.closed {
		return fmt.Errorf("vfs: %s: sync on closed handle", h.f.path)
	}
	site := "sync " + h.f.path
	if f, ok := fs.persistOp(site); ok {
		switch f.Kind {
		case FaultErr:
			return fs.injected(site, fs.pOps)
		case FaultSyncLie:
			return nil // reported durable; durable image untouched
		case FaultTorn, FaultShort:
			// Write-only faults scripted on a sync: ignore.
		}
	}
	h.f.durable = append(h.f.durable[:0], h.f.data...)
	return nil
}

func (h *handle) Truncate(size int64) error {
	fs := h.f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if h.closed || h.readOnly {
		return fmt.Errorf("vfs: %s: truncate on closed or read-only handle", h.f.path)
	}
	site := fmt.Sprintf("truncate %s %d", h.f.path, size)
	if f, ok := fs.persistOp(site); ok && f.Kind == FaultErr {
		return fs.injected(site, fs.pOps)
	}
	if size < 0 {
		return fmt.Errorf("vfs: negative truncate")
	}
	if size <= int64(len(h.f.data)) {
		h.f.data = h.f.data[:size]
	} else {
		h.f.data = append(h.f.data, make([]byte, size-int64(len(h.f.data)))...)
	}
	return nil
}

func (h *handle) Close() error {
	fs := h.f.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	h.closed = true
	return nil
}
