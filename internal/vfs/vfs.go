// Package vfs abstracts the engine's file I/O behind a narrow File/FS
// interface pair so that every byte the engine persists — WAL frames,
// checkpoints, heap page write-backs — can be routed through either the
// real operating system (OS) or a deterministic fault-injecting in-memory
// implementation (FaultFS) driven by a parsable script.
//
// The fault model distinguishes what the engine *observes* (write and sync
// errors, short writes) from what *survives a power cut* (only bytes
// covered by an honest Sync, plus an optional scripted prefix of the
// unsynced tail — a torn write). That split is what makes the crash-point
// sweep in internal/crashtest meaningful: the engine can believe a write
// happened while the durable image disagrees, exactly the §7 boundary the
// paper's logless-rollback argument has to survive.
package vfs

import (
	"io"
	"os"
	"time"
)

// File is the engine-facing handle: sequential appends (Write), positioned
// page writes (WriteAt), positioned reads (ReadAt), durability barriers
// (Sync), and teardown. It is the least surface the WAL and the heap
// write-back path need.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	Sync() error
	Truncate(size int64) error
	Close() error
}

// FS creates, opens, and manipulates files by path. Implementations must
// make Rename atomic with respect to crash recovery: after a power cut the
// path refers to either the old or the new content, never a mixture.
type FS interface {
	// Create creates (or truncates) a read-write file.
	Create(path string) (File, error)
	// OpenAppend opens a file for appending, creating it if absent.
	// Writes land at the end of the existing content.
	OpenAppend(path string) (File, error)
	// Open opens a file read-only.
	Open(path string) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
}

// osFS is the passthrough implementation over the real filesystem.
type osFS struct{}

// Disk returns the passthrough OS filesystem. All path-based entry points
// in the wal package route through it, so production behaviour is
// unchanged by the indirection.
func Disk() FS { return osFS{} }

func (osFS) Create(path string) (File, error) { return os.Create(path) }

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_RDWR, 0o644)
}

func (osFS) Open(path string) (File, error) { return os.Open(path) }

func (osFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

// RetryPolicy bounds how the engine retries a transiently failing I/O
// operation: Attempts total tries with exponential backoff between them.
// The zero value selects the defaults (3 attempts, 1 ms base backoff,
// real sleeping); NoRetry disables retrying. Sleep is injectable so tests
// and the crash harness advance without wall-clock delays.
type RetryPolicy struct {
	// Attempts is the total number of tries (first try included).
	// 0 selects DefaultRetryAttempts.
	Attempts int
	// Backoff is the sleep before the first retry; it doubles each
	// further retry. 0 selects DefaultRetryBackoff.
	Backoff time.Duration
	// Sleep is the clock used between attempts; nil selects time.Sleep.
	Sleep func(time.Duration)
}

// Retry defaults.
const (
	DefaultRetryAttempts = 3
	DefaultRetryBackoff  = time.Millisecond
)

// NoRetry is the single-attempt policy: the first failure is final.
var NoRetry = RetryPolicy{Attempts: 1}

// Normalize fills zero fields with the defaults.
func (p RetryPolicy) Normalize() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = DefaultRetryAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultRetryBackoff
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// Wait sleeps the backoff for the given zero-based retry (Backoff << n,
// exponential). Callers normalize first.
func (p RetryPolicy) Wait(n int) {
	if n < 0 {
		n = 0
	}
	if n > 16 {
		n = 16
	}
	p.Sleep(p.Backoff << uint(n))
}
