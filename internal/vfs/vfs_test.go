package vfs

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func TestScriptRoundTrip(t *testing.T) {
	s := NewScript()
	s.CrashAt = 7
	s.AddFault(3, FaultTorn, 12)
	s.AddFault(5, FaultErr, 0)
	s.AddFault(9, FaultShort, 4)
	s.AddFault(11, FaultSyncLie, 0)
	s.ReadErrs[2] = true
	s.CutKeep["wal.log"] = 12

	text := s.String()
	back, err := ParseScript(text)
	if err != nil {
		t.Fatalf("ParseScript: %v", err)
	}
	if back.String() != text {
		t.Fatalf("round trip mismatch:\n%s\nvs\n%s", text, back.String())
	}
	if back.CrashAt != 7 || back.Faults[3].Keep != 12 || !back.ReadErrs[2] || back.CutKeep["wal.log"] != 12 {
		t.Fatalf("parsed script lost fields: %+v", back)
	}
}

func TestScriptParseComments(t *testing.T) {
	s, err := ParseScript("# pinned regression\n\nfault 3 torn 12\ncrash 4\n")
	if err != nil {
		t.Fatal(err)
	}
	if s.CrashAt != 4 || s.Faults[3].Kind != FaultTorn {
		t.Fatalf("bad parse: %+v", s)
	}
	if _, err := ParseScript("fault x err"); err == nil {
		t.Fatal("want error for bad number")
	}
	if _, err := ParseScript("fault 3 torn"); err == nil {
		t.Fatal("want error for torn without keep")
	}
	if _, err := ParseScript("wibble 1"); err == nil {
		t.Fatal("want error for unknown directive")
	}
}

func TestFaultFSDurability(t *testing.T) {
	fs := NewFaultFS(nil)
	f, err := fs.Create("data")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	// Unsynced tail is visible in the page cache...
	got, err := fs.ReadFile("data")
	if err != nil || string(got) != "hello world" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	// ...but a power cut keeps only the synced prefix.
	fs.PowerCut()
	got, _ = fs.ReadFile("data")
	if string(got) != "hello " {
		t.Fatalf("after power cut: %q", got)
	}
}

func TestFaultFSCutKeep(t *testing.T) {
	s := NewScript()
	s.CutKeep["data"] = 3
	fs := NewFaultFS(s)
	f, _ := fs.Create("data")
	if _, err := f.Write([]byte("abc")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("defgh")); err != nil {
		t.Fatal(err)
	}
	fs.PowerCut()
	got, _ := fs.ReadFile("data")
	if string(got) != "abcdef" {
		t.Fatalf("cutkeep 3: got %q, want %q", got, "abcdef")
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	s := NewScript().AddFault(2, FaultTorn, 2)
	fs := NewFaultFS(s)
	f, _ := fs.Create("f") // op 1
	n, err := f.Write([]byte("abcdef"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write: n=%d err=%v", n, err)
	}
	got, _ := fs.ReadFile("f")
	if string(got) != "ab" {
		t.Fatalf("page cache after torn write: %q", got)
	}
	// The next write lands after the applied prefix (sequential handle).
	if _, err := f.Write([]byte("XY")); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.ReadFile("f")
	if string(got) != "abXY" {
		t.Fatalf("resume after tear: %q", got)
	}
}

func TestFaultFSShortWrite(t *testing.T) {
	s := NewScript().AddFault(2, FaultShort, 3)
	fs := NewFaultFS(s)
	f, _ := fs.Create("f")
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || err != io.ErrShortWrite {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
}

func TestFaultFSSyncFailsOnce(t *testing.T) {
	s := NewScript().AddFault(3, FaultErr, 0)
	fs := NewFaultFS(s)
	f, _ := fs.Create("f")                             // op 1
	f.Write([]byte("abc"))                             // op 2
	if err := f.Sync(); !errors.Is(err, ErrInjected) { // op 3
		t.Fatalf("want injected sync error, got %v", err)
	}
	if err := f.Sync(); err != nil { // op 4: retry succeeds
		t.Fatalf("retry sync: %v", err)
	}
	fs.PowerCut()
	got, _ := fs.ReadFile("f")
	if string(got) != "abc" {
		t.Fatalf("durable after retried sync: %q", got)
	}
}

func TestFaultFSSyncLie(t *testing.T) {
	s := NewScript().AddFault(3, FaultSyncLie, 0)
	fs := NewFaultFS(s)
	f, _ := fs.Create("f")
	f.Write([]byte("abc"))
	if err := f.Sync(); err != nil { // lies
		t.Fatalf("lying sync should report success, got %v", err)
	}
	fs.PowerCut()
	got, _ := fs.ReadFile("f")
	if string(got) != "" {
		t.Fatalf("lying sync must not persist: %q", got)
	}
}

func TestFaultFSCrashPoint(t *testing.T) {
	s := NewScript()
	s.CrashAt = 3
	fs := NewFaultFS(s)
	crash, err := Recovering(func() error {
		f, err := fs.Create("f") // op 1
		if err != nil {
			return err
		}
		if _, err := f.Write([]byte("abc")); err != nil { // op 2
			return err
		}
		if _, err := f.Write([]byte("def")); err != nil { // op 3: crash fires first
			return err
		}
		return errors.New("unreachable: crash did not fire")
	})
	if err != nil {
		t.Fatal(err)
	}
	if crash == nil || crash.Op != 3 {
		t.Fatalf("want crash at op 3, got %+v", crash)
	}
	if !fs.Crashed() {
		t.Fatal("Crashed() should report true")
	}
	// Op 3 did not execute: only "abc" is in the page cache.
	got, _ := fs.ReadFile("f")
	if string(got) != "abc" {
		t.Fatalf("page cache at crash: %q", got)
	}
	// The FS stays usable after the crash for recovery I/O; the crash
	// point fires at most once.
	f, err := fs.OpenAppend("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ghi")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSReadErr(t *testing.T) {
	s := NewScript()
	s.ReadErrs[2] = true
	fs := NewFaultFS(s)
	f, _ := fs.Create("f")
	f.Write([]byte("abcdef"))
	buf := make([]byte, 3)
	if _, err := f.ReadAt(buf, 0); err != nil { // read op 1
		t.Fatal(err)
	}
	if _, err := f.ReadAt(buf, 3); !errors.Is(err, ErrInjected) { // read op 2
		t.Fatalf("want injected read error, got %v", err)
	}
	if _, err := f.ReadAt(buf, 3); err != nil { // read op 3 ok again
		t.Fatal(err)
	}
}

func TestFaultFSReadAtEOF(t *testing.T) {
	fs := NewFaultFS(nil)
	f, _ := fs.Create("f")
	f.Write([]byte("abc"))
	buf := make([]byte, 5)
	n, err := f.ReadAt(buf, 0)
	if n != 3 || err != io.EOF {
		t.Fatalf("partial ReadAt: n=%d err=%v", n, err)
	}
	if _, err := f.ReadAt(buf, 10); err != io.EOF {
		t.Fatalf("past-end ReadAt: %v", err)
	}
	// io.NewSectionReader over the handle must work for Iterate.
	sr := io.NewSectionReader(f, 0, int64(1)<<62)
	all, err := io.ReadAll(sr)
	if err != nil || !bytes.Equal(all, []byte("abc")) {
		t.Fatalf("section read: %q, %v", all, err)
	}
}

func TestFaultFSRenameAndAppend(t *testing.T) {
	fs := NewFaultFS(nil)
	f, _ := fs.Create("a")
	f.Write([]byte("one"))
	f.Close()
	if err := fs.Rename("a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("a"); err == nil {
		t.Fatal("old path should be gone")
	}
	g, err := fs.OpenAppend("b")
	if err != nil {
		t.Fatal(err)
	}
	g.Write([]byte("two"))
	got, _ := fs.ReadFile("b")
	if string(got) != "onetwo" {
		t.Fatalf("append after rename: %q", got)
	}
	if err := fs.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("b"); err == nil {
		t.Fatal("removed path should be gone")
	}
}

func TestRetryPolicyNormalize(t *testing.T) {
	p := RetryPolicy{}.Normalize()
	if p.Attempts != DefaultRetryAttempts || p.Backoff != DefaultRetryBackoff || p.Sleep == nil {
		t.Fatalf("bad defaults: %+v", p)
	}
	var slept []time.Duration
	p = RetryPolicy{Attempts: 5, Backoff: time.Millisecond, Sleep: func(d time.Duration) { slept = append(slept, d) }}.Normalize()
	p.Wait(0)
	p.Wait(1)
	p.Wait(2)
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond}
	for i, d := range want {
		if slept[i] != d {
			t.Fatalf("backoff %d = %v, want %v", i, slept[i], d)
		}
	}
	if NoRetry.Attempts != 1 {
		t.Fatal("NoRetry must be single-attempt")
	}
}

func TestRandomScriptDeterministic(t *testing.T) {
	a := RandomScript(42, 100).String()
	b := RandomScript(42, 100).String()
	if a != b {
		t.Fatalf("RandomScript not deterministic:\n%s\nvs\n%s", a, b)
	}
	if c := RandomScript(43, 100).String(); c == a {
		t.Fatal("different seeds should (overwhelmingly) differ")
	}
	if _, err := ParseScript(a); err != nil {
		t.Fatalf("random script must parse: %v", err)
	}
}
