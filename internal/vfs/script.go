package vfs

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
)

// FaultKind enumerates the injectable fault behaviours.
type FaultKind int

const (
	// FaultErr fails the operation outright with ErrInjected. On a write
	// nothing is applied; on a sync the durable image does not advance.
	// A sync that should "fail once then succeed" is simply a FaultErr
	// scripted at one sync's op index: the engine's retry performs a new
	// operation with a new index, which the script leaves alone.
	FaultErr FaultKind = iota
	// FaultTorn applies only the first Keep bytes of a write, then fails
	// with ErrInjected — the prefix of the record persists in the page
	// cache. Write operations only.
	FaultTorn
	// FaultShort applies the first Keep bytes of a write and returns
	// (Keep, io.ErrShortWrite) — the contractual partial-write signal a
	// correct caller must resume from. Write operations only.
	FaultShort
	// FaultSyncLie reports the sync as successful without advancing the
	// durable image: the classic lying-fsync drive. Sync operations only.
	FaultSyncLie
)

func (k FaultKind) String() string {
	switch k {
	case FaultErr:
		return "err"
	case FaultTorn:
		return "torn"
	case FaultShort:
		return "short"
	case FaultSyncLie:
		return "synclie"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scripted fault, keyed by the 1-based index of the
// persisting operation (write, sync, truncate, rename, remove, create) it
// fires at. Keep is the byte count for torn and short writes.
type Fault struct {
	Op   int
	Kind FaultKind
	Keep int
}

// Script is a deterministic fault plan for one FaultFS. It is valid to
// share a Script between runs; the Script itself is never mutated by the
// filesystem.
type Script struct {
	// CrashAt, when positive, panics with *CrashPoint immediately before
	// the CrashAt-th persisting operation executes. Crashing before
	// operation i is equivalent to crashing after operation i−1, so
	// sweeping CrashAt over 1..total+1 covers every I/O boundary.
	CrashAt int
	// Faults are the per-operation faults, keyed by persisting-op index.
	Faults map[int]Fault
	// ReadErrs holds 1-based read-operation indexes that fail with
	// ErrInjected.
	ReadErrs map[int]bool
	// CutKeep maps a path to the number of unsynced bytes that survive a
	// power cut beyond the durable image — a torn tail materialized at
	// crash time. Zero (or absent) keeps only what honest syncs covered.
	CutKeep map[string]int
}

// NewScript returns an empty script.
func NewScript() *Script {
	return &Script{Faults: map[int]Fault{}, ReadErrs: map[int]bool{}, CutKeep: map[string]int{}}
}

// WithCrash returns a shallow copy of s with CrashAt set — the sweep's
// per-point derivation. The fault maps are shared (never mutated).
func (s *Script) WithCrash(at int) *Script {
	c := *s
	c.CrashAt = at
	return &c
}

// AddFault registers a fault at the given persisting-op index.
func (s *Script) AddFault(op int, kind FaultKind, keep int) *Script {
	s.Faults[op] = Fault{Op: op, Kind: kind, Keep: keep}
	return s
}

// AddFaultRange registers the same fault kind on every persisting op in
// [from, to], inclusive.
func (s *Script) AddFaultRange(from, to int, kind FaultKind) *Script {
	for op := from; op <= to; op++ {
		s.AddFault(op, kind, 0)
	}
	return s
}

// String renders the script in the line format Parse reads. The output is
// stable (sorted), so a failing run's script can be checked in verbatim as
// a regression pin or uploaded as a CI artifact.
func (s *Script) String() string {
	var b strings.Builder
	if s.CrashAt > 0 {
		fmt.Fprintf(&b, "crash %d\n", s.CrashAt)
	}
	ops := make([]int, 0, len(s.Faults))
	for op := range s.Faults {
		ops = append(ops, op)
	}
	sort.Ints(ops)
	for _, op := range ops {
		f := s.Faults[op]
		switch f.Kind {
		case FaultTorn, FaultShort:
			fmt.Fprintf(&b, "fault %d %s %d\n", op, f.Kind, f.Keep)
		default:
			fmt.Fprintf(&b, "fault %d %s\n", op, f.Kind)
		}
	}
	reads := make([]int, 0, len(s.ReadErrs))
	for op := range s.ReadErrs {
		reads = append(reads, op)
	}
	sort.Ints(reads)
	for _, op := range reads {
		fmt.Fprintf(&b, "readfault %d\n", op)
	}
	paths := make([]string, 0, len(s.CutKeep))
	for p := range s.CutKeep {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		fmt.Fprintf(&b, "cutkeep %s %d\n", p, s.CutKeep[p])
	}
	return b.String()
}

// ParseScript reads the format String writes: one directive per line,
// blank lines and #-comments ignored.
//
//	crash N             panic before persisting op N
//	fault N err         persisting op N fails
//	fault N torn K      write op N applies K bytes, then fails
//	fault N short K     write op N applies K bytes, returns io.ErrShortWrite
//	fault N synclie     sync op N lies (success reported, nothing durable)
//	readfault N         read op N fails
//	cutkeep PATH K      power cut keeps K unsynced bytes of PATH
func ParseScript(text string) (*Script, error) {
	s := NewScript()
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		bad := func(why string) error {
			return fmt.Errorf("vfs: script line %d (%q): %s", ln+1, line, why)
		}
		atoi := func(f string) (int, error) {
			n, err := strconv.Atoi(f)
			if err != nil || n < 0 {
				return 0, bad("bad number " + f)
			}
			return n, nil
		}
		switch fields[0] {
		case "crash":
			if len(fields) != 2 {
				return nil, bad("want: crash N")
			}
			n, err := atoi(fields[1])
			if err != nil {
				return nil, err
			}
			s.CrashAt = n
		case "fault":
			if len(fields) < 3 {
				return nil, bad("want: fault N KIND [KEEP]")
			}
			op, err := atoi(fields[1])
			if err != nil {
				return nil, err
			}
			var kind FaultKind
			keep := 0
			switch fields[2] {
			case "err":
				kind = FaultErr
			case "synclie":
				kind = FaultSyncLie
			case "torn", "short":
				if fields[2] == "torn" {
					kind = FaultTorn
				} else {
					kind = FaultShort
				}
				if len(fields) != 4 {
					return nil, bad("torn/short need a KEEP byte count")
				}
				if keep, err = atoi(fields[3]); err != nil {
					return nil, err
				}
			default:
				return nil, bad("unknown fault kind " + fields[2])
			}
			s.AddFault(op, kind, keep)
		case "readfault":
			if len(fields) != 2 {
				return nil, bad("want: readfault N")
			}
			n, err := atoi(fields[1])
			if err != nil {
				return nil, err
			}
			s.ReadErrs[n] = true
		case "cutkeep":
			if len(fields) != 3 {
				return nil, bad("want: cutkeep PATH K")
			}
			n, err := atoi(fields[2])
			if err != nil {
				return nil, err
			}
			s.CutKeep[fields[1]] = n
		default:
			return nil, bad("unknown directive")
		}
	}
	return s, nil
}

// RandomScript seeds a script with faults sprinkled over the first
// maxOps persisting operations: a few transient errors, a torn and a
// short write, and (rarely) a lying sync. Deterministic per seed; the
// generated script prints with String for reproduction.
func RandomScript(seed int64, maxOps int) *Script {
	rng := rand.New(rand.NewSource(seed))
	s := NewScript()
	if maxOps < 4 {
		maxOps = 4
	}
	pick := func() int { return 1 + rng.Intn(maxOps) }
	for i, n := 0, 1+rng.Intn(3); i < n; i++ {
		s.AddFault(pick(), FaultErr, 0)
	}
	s.AddFault(pick(), FaultTorn, 1+rng.Intn(24))
	s.AddFault(pick(), FaultShort, 1+rng.Intn(24))
	if rng.Intn(4) == 0 {
		s.AddFault(pick(), FaultSyncLie, 0)
	}
	return s
}
