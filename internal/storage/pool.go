// Package storage implements the heap storage engine the warehouse runs on:
// slotted pages holding whole tuples, a buffer pool that accounts for
// logical page I/O, per-page short-duration latches, and in-place tuple
// updates.
//
// The 2VNL paper (§4) requires exactly two properties of the underlying
// DBMS's storage layer, and this package provides both:
//
//  1. While a tuple is being modified a latch (short-duration lock) is held
//     on its page so readers never observe a partly-modified tuple; the
//     latch is released as soon as the tuple is modified, not at commit.
//  2. Physical tuple updates happen in place, so a scan never returns two
//     physical records for one tuple.
//
// The buffer pool does not persist anything — the engine is in-memory — but
// it simulates a page cache with LRU eviction and counts hits, misses
// (reads), and dirty-page write-backs. Those counters power the paper's §6
// I/O-overhead comparison between 2VNL (both tuple versions in one physical
// location, zero extra I/O) and MV2PL version-pool designs (chain walks and
// copy-outs cost extra I/O).
package storage

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// DefaultPageSize is the page size, in bytes, used when a Heap is created
// with size 0. 8 KiB matches common DBMS defaults.
const DefaultPageSize = 8192

// PageKey identifies a page globally: which file (heap) and which page
// within it.
type PageKey struct {
	File int
	Page int
}

// IOStats is a snapshot of buffer-pool activity. Misses are logical read
// I/Os; WriteBacks are logical write I/Os (dirty evictions plus flushes).
type IOStats struct {
	Hits       int64
	Misses     int64
	WriteBacks int64
}

// Reads returns the logical read I/O count (buffer misses).
func (s IOStats) Reads() int64 { return s.Misses }

// Total returns all logical I/Os (reads plus write-backs).
func (s IOStats) Total() int64 { return s.Misses + s.WriteBacks }

// Sub returns the delta between two snapshots (s - prev).
func (s IOStats) Sub(prev IOStats) IOStats {
	return IOStats{
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		WriteBacks: s.WriteBacks - prev.WriteBacks,
	}
}

func (s IOStats) String() string {
	return fmt.Sprintf("hits=%d reads=%d writebacks=%d", s.Hits, s.Misses, s.WriteBacks)
}

type poolEntry struct {
	key   PageKey
	dirty bool
}

// BufferPool simulates a fixed-capacity page cache with LRU replacement and
// counts logical I/O. All heaps sharing a pool compete for its capacity,
// exactly as relations and a version pool would inside one DBMS.
type BufferPool struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recently used; values are *poolEntry
	index    map[PageKey]*list.Element
	stats    IOStats
	// Optional observability counters (see Instrument); nil until
	// instrumented. They mirror stats live into a shared registry, so
	// several pools instrumented with one prefix aggregate process-wide.
	cHits, cMisses, cWriteBacks *obs.Counter
}

// NewBufferPool returns a pool caching up to capacity pages. Capacity must
// be positive.
func NewBufferPool(capacity int) *BufferPool {
	if capacity <= 0 {
		panic("storage: buffer pool capacity must be positive")
	}
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		index:    make(map[PageKey]*list.Element, capacity),
	}
}

// Instrument mirrors the pool's counters live into reg under
// prefix+"_hits_total" etc. Several pools instrumented with the same prefix
// share the counters (registry lookups are get-or-create), yielding
// process-wide aggregate I/O; counters record activity from instrumentation
// time onward.
func (p *BufferPool) Instrument(reg *obs.Registry, prefix string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cHits = reg.Counter(prefix+"_hits_total", "buffer-pool hits")
	p.cMisses = reg.Counter(prefix+"_misses_total", "buffer-pool misses (logical read I/Os)")
	p.cWriteBacks = reg.Counter(prefix+"_writebacks_total", "dirty-page write-backs (logical write I/Os)")
}

// Touch records an access to the page. A miss counts as a read I/O; evicting
// a dirty page counts as a write I/O. When write is true the cached page is
// marked dirty.
func (p *BufferPool) Touch(key PageKey, write bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.index[key]; ok {
		p.stats.Hits++
		if p.cHits != nil {
			p.cHits.Inc()
		}
		p.lru.MoveToFront(el)
		if write {
			el.Value.(*poolEntry).dirty = true
		}
		return
	}
	p.stats.Misses++
	if p.cMisses != nil {
		p.cMisses.Inc()
	}
	for p.lru.Len() >= p.capacity {
		back := p.lru.Back()
		e := back.Value.(*poolEntry)
		if e.dirty {
			p.stats.WriteBacks++
			if p.cWriteBacks != nil {
				p.cWriteBacks.Inc()
			}
		}
		delete(p.index, e.key)
		p.lru.Remove(back)
	}
	p.index[key] = p.lru.PushFront(&poolEntry{key: key, dirty: write})
}

// Stats returns a snapshot of the pool's counters.
func (p *BufferPool) Stats() IOStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Reset zeroes the counters and empties the cache, flushing nothing (this is
// an accounting reset, not a checkpoint).
func (p *BufferPool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = IOStats{}
	p.lru.Init()
	p.index = make(map[PageKey]*list.Element, p.capacity)
}

// Flush write-backs every dirty cached page, counting one write I/O each,
// and marks them clean. It models a checkpoint at transaction commit.
func (p *BufferPool) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for el := p.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*poolEntry)
		if e.dirty {
			p.stats.WriteBacks++
			if p.cWriteBacks != nil {
				p.cWriteBacks.Inc()
			}
			e.dirty = false
		}
	}
}

// Capacity returns the pool's page capacity.
func (p *BufferPool) Capacity() int { return p.capacity }
