// Package storage implements the heap storage engine the warehouse runs on:
// slotted pages holding whole tuples, a buffer pool that accounts for
// logical page I/O, per-page short-duration latches, and in-place tuple
// updates.
//
// The 2VNL paper (§4) requires exactly two properties of the underlying
// DBMS's storage layer, and this package provides both:
//
//  1. While a tuple is being modified a latch (short-duration lock) is held
//     on its page so readers never observe a partly-modified tuple; the
//     latch is released as soon as the tuple is modified, not at commit.
//  2. Physical tuple updates happen in place, so a scan never returns two
//     physical records for one tuple.
//
// The buffer pool does not persist anything — the engine is in-memory — but
// it simulates a page cache with LRU eviction and counts hits, misses
// (reads), and dirty-page write-backs. Those counters power the paper's §6
// I/O-overhead comparison between 2VNL (both tuple versions in one physical
// location, zero extra I/O) and MV2PL version-pool designs (chain walks and
// copy-outs cost extra I/O).
package storage

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// DefaultPageSize is the page size, in bytes, used when a Heap is created
// with size 0. 8 KiB matches common DBMS defaults.
const DefaultPageSize = 8192

// PageKey identifies a page globally: which file (heap) and which page
// within it.
type PageKey struct {
	File int
	Page int
}

// IOStats is a snapshot of buffer-pool activity. Misses are logical read
// I/Os; WriteBacks are logical write I/Os (dirty evictions plus flushes).
type IOStats struct {
	Hits       int64
	Misses     int64
	WriteBacks int64
}

// Reads returns the logical read I/O count (buffer misses).
func (s IOStats) Reads() int64 { return s.Misses }

// Total returns all logical I/Os (reads plus write-backs).
func (s IOStats) Total() int64 { return s.Misses + s.WriteBacks }

// Sub returns the delta between two snapshots (s - prev).
func (s IOStats) Sub(prev IOStats) IOStats {
	return IOStats{
		Hits:       s.Hits - prev.Hits,
		Misses:     s.Misses - prev.Misses,
		WriteBacks: s.WriteBacks - prev.WriteBacks,
	}
}

func (s IOStats) String() string {
	return fmt.Sprintf("hits=%d reads=%d writebacks=%d", s.Hits, s.Misses, s.WriteBacks)
}

// poolEntry is one cached page. Recency is a logical-clock stamp rather
// than a position in a linked list, so a cache hit updates it with one
// atomic store instead of a latched list splice.
type poolEntry struct {
	key   PageKey
	stamp atomic.Int64
	dirty atomic.Bool
}

// poolCounters is the optional observability mirror, published atomically
// so the lock-free hit path can read it without a latch.
type poolCounters struct {
	hits, misses, writeBacks *obs.Counter
}

// BufferPool simulates a fixed-capacity page cache with LRU replacement and
// counts logical I/O. All heaps sharing a pool compete for its capacity,
// exactly as relations and a version pool would inside one DBMS.
//
// The hit path — by far the common case on the reader side — is lock-free:
// the page index is read without any latch and a hit costs two atomic
// operations (recency stamp, hit counter). Only misses take the mutex, to
// serialize insertion and eviction. Single-threaded, the stamp-based
// eviction (evict the minimum stamp) is exactly LRU, so the §6 I/O
// experiments' exact hit/miss/write-back counts are unchanged; under
// concurrency the counters are exact and the eviction order is LRU up to
// the interleaving of the racing accesses.
type BufferPool struct {
	capacity int
	clock    atomic.Int64
	index    sync.Map // PageKey → *poolEntry
	hits     atomic.Int64
	misses   atomic.Int64
	wbacks   atomic.Int64
	obsC     atomic.Pointer[poolCounters]

	// mu serializes the miss path (insert + evict) and structural
	// operations (Reset, Flush); it is never taken on a hit. size counts
	// cached entries and is only touched while mu is held.
	mu   sync.Mutex
	size int
	// writers maps a file ID to the function that persists one of its
	// pages. When a dirty page of a registered file is written back —
	// eviction or Flush — the writer runs and its error surfaces to the
	// caller (and stays readable via Err). Files without a writer keep the
	// historical accounting-only behaviour.
	writers map[int]func(page int) error
	ioErr   error // first write-back error; cleared by Reset
}

// NewBufferPool returns a pool caching up to capacity pages. Capacity must
// be positive.
func NewBufferPool(capacity int) *BufferPool {
	if capacity <= 0 {
		panic("storage: buffer pool capacity must be positive")
	}
	return &BufferPool{capacity: capacity}
}

// Instrument mirrors the pool's counters live into reg under
// prefix+"_hits_total" etc. Several pools instrumented with the same prefix
// share the counters (registry lookups are get-or-create), yielding
// process-wide aggregate I/O; counters record activity from instrumentation
// time onward.
func (p *BufferPool) Instrument(reg *obs.Registry, prefix string) {
	p.obsC.Store(&poolCounters{
		hits:       reg.Counter(prefix+"_hits_total", "buffer-pool hits"),
		misses:     reg.Counter(prefix+"_misses_total", "buffer-pool misses (logical read I/Os)"),
		writeBacks: reg.Counter(prefix+"_writebacks_total", "dirty-page write-backs (logical write I/Os)"),
	})
}

// RegisterWriter installs fn as the persister for fileID's pages: dirty
// write-backs of those pages call fn(page) and propagate its error. Pass
// nil to unregister. Writers must not touch the pool re-entrantly.
func (p *BufferPool) RegisterWriter(fileID int, fn func(page int) error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if fn == nil {
		delete(p.writers, fileID)
		return
	}
	if p.writers == nil {
		p.writers = map[int]func(page int) error{}
	}
	p.writers[fileID] = fn
}

// Err returns the first write-back error since the last Reset, if any.
// Eviction can happen on any goroutine's miss, so an error may surface
// here even when every directly-returned Touch error was checked.
func (p *BufferPool) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ioErr
}

// Touch records an access to the page. A miss counts as a read I/O; evicting
// a dirty page counts as a write I/O. When write is true the cached page is
// marked dirty. The returned error is a write-back failure of some evicted
// dirty page (not necessarily key's); the access itself is still recorded.
func (p *BufferPool) Touch(key PageKey, write bool) error {
	if v, ok := p.index.Load(key); ok {
		p.recordHit(v.(*poolEntry), write)
		return nil
	}
	return p.miss(key, write)
}

func (p *BufferPool) recordHit(e *poolEntry, write bool) {
	e.stamp.Store(p.clock.Add(1))
	if write {
		e.dirty.Store(true)
	}
	p.hits.Add(1)
	if c := p.obsC.Load(); c != nil {
		c.hits.Inc()
	}
}

// miss inserts the page under the latch, evicting least-recently-stamped
// pages to make room. The returned error is the first dirty-eviction
// write-back failure; the insert proceeds regardless.
func (p *BufferPool) miss(key PageKey, write bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Another goroutine may have faulted the page in while we waited; its
	// miss was counted, ours is now a hit.
	if v, ok := p.index.Load(key); ok {
		p.recordHit(v.(*poolEntry), write)
		return nil
	}
	p.misses.Add(1)
	if c := p.obsC.Load(); c != nil {
		c.misses.Inc()
	}
	var firstErr error
	for p.size >= p.capacity {
		if err := p.evictOldestLocked(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	e := &poolEntry{key: key}
	e.stamp.Store(p.clock.Add(1))
	e.dirty.Store(write)
	p.index.Store(key, e)
	p.size++
	return firstErr
}

// writeBackLocked persists one page through its file's registered writer
// (if any), recording the first failure in ioErr. Callers hold mu.
func (p *BufferPool) writeBackLocked(key PageKey) error {
	fn := p.writers[key.File]
	if fn == nil {
		return nil
	}
	err := fn(key.Page)
	if err != nil && p.ioErr == nil {
		p.ioErr = err
	}
	return err
}

// evictOldestLocked removes the entry with the minimum recency stamp —
// exactly the LRU victim. A dirty victim is written back first; a
// write-back failure still evicts (the WAL, not the mirror, is the
// authority for durability) but surfaces the error. Callers hold mu.
func (p *BufferPool) evictOldestLocked() error {
	var victim *poolEntry
	var minStamp int64
	p.index.Range(func(_, v any) bool {
		e := v.(*poolEntry)
		if st := e.stamp.Load(); victim == nil || st < minStamp {
			victim, minStamp = e, st
		}
		return true
	})
	if victim == nil {
		p.size = 0
		return nil
	}
	var err error
	if victim.dirty.Load() {
		err = p.writeBackLocked(victim.key)
		p.wbacks.Add(1)
		if c := p.obsC.Load(); c != nil {
			c.writeBacks.Inc()
		}
	}
	p.index.Delete(victim.key)
	p.size--
	return err
}

// Stats returns a snapshot of the pool's counters.
func (p *BufferPool) Stats() IOStats {
	return IOStats{
		Hits:       p.hits.Load(),
		Misses:     p.misses.Load(),
		WriteBacks: p.wbacks.Load(),
	}
}

// Reset zeroes the counters and empties the cache, flushing nothing (this is
// an accounting reset, not a checkpoint).
func (p *BufferPool) Reset() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.hits.Store(0)
	p.misses.Store(0)
	p.wbacks.Store(0)
	p.index.Range(func(k, _ any) bool {
		p.index.Delete(k)
		return true
	})
	p.size = 0
	p.ioErr = nil
}

// Flush write-backs every dirty cached page, counting one write I/O each,
// and marks them clean. It models a checkpoint at transaction commit. A
// page whose registered writer fails stays dirty (so a later Flush retries
// it); the first such error is returned.
func (p *BufferPool) Flush() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	var firstErr error
	p.index.Range(func(_, v any) bool {
		e := v.(*poolEntry)
		if e.dirty.Swap(false) {
			if err := p.writeBackLocked(e.key); err != nil {
				e.dirty.Store(true)
				if firstErr == nil {
					firstErr = err
				}
				return true
			}
			p.wbacks.Add(1)
			if c := p.obsC.Load(); c != nil {
				c.writeBacks.Inc()
			}
		}
		return true
	})
	return firstErr
}

// Capacity returns the pool's page capacity.
func (p *BufferPool) Capacity() int { return p.capacity }
