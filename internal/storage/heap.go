package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/vfs"
)

// RID is a record identifier: the physical address of a tuple within a heap.
type RID struct {
	Page int
	Slot int
}

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// ErrNotFound is the category error for "the requested tuple does not
// exist": a dangling RID, a slot concurrently freed, a key with no entry.
// Callers running cursor-style over previously collected RIDs (the executor's
// DML paths, the indexed access path) may legally skip errors.Is(err,
// ErrNotFound); every other error from Get/Update/Delete is an I/O fault or
// corruption and must fail the statement, never shrink its result.
var ErrNotFound = errors.New("storage: not found")

// ErrNoSuchTuple is returned when an RID does not name a live tuple. It
// wraps ErrNotFound, so errors.Is(err, ErrNotFound) matches it.
var ErrNoSuchTuple = fmt.Errorf("%w: no such tuple", ErrNotFound)

// slot holds one tuple. Dead slots are left in place and reused by later
// inserts; they still occupy their page's slot array but not its byte
// budget.
type slot struct {
	tuple catalog.Tuple
	live  bool
}

// page is a slotted page. Its latch (mu) is the paper's "short-duration
// lock": held only across a single tuple read or mutation, never until
// commit.
type page struct {
	mu    sync.RWMutex
	slots []slot
	live  int // live slot count
}

// Heap is an unordered collection of tuples stored on slotted pages. Each
// tuple occupies rowBytes bytes of its page (fixed-width accounting, as the
// paper's Figure 3 measures schemas by declared column lengths), so a page
// holds pageSize/rowBytes tuples. Widening a schema — as the 2VNL extension
// does — therefore reduces tuples per page and increases scan I/O, an effect
// the paper calls out in §6.
type Heap struct {
	name        string
	fileID      int
	pool        *BufferPool
	rowBytes    int
	pageBytes   int
	slotsPerPag int

	mu    sync.RWMutex // guards pages slice growth, freePages, and backing
	pages []*page
	// freePages holds indexes of pages that had a free slot when last
	// observed; it may contain stale entries, which Insert skips.
	freePages []int
	// backing, when set, mirrors dirty pages to a file on write-back: the
	// pool's eviction/flush of this heap's pages calls writeBackPage. The
	// mirror is redo state only — recovery rebuilds heaps from the WAL —
	// but it makes every heap-flush a real I/O the crash harness can fault.
	backing vfs.File

	liveCount atomic.Int64
}

var nextFileID atomic.Int64

// NewHeap creates a heap named name whose tuples each occupy rowBytes bytes,
// attached to the given buffer pool. pageSize 0 selects DefaultPageSize.
// rowBytes must be positive and at most pageSize.
func NewHeap(name string, rowBytes, pageSize int, pool *BufferPool) (*Heap, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if rowBytes <= 0 {
		return nil, fmt.Errorf("storage: heap %q rowBytes must be positive, got %d", name, rowBytes)
	}
	if rowBytes > pageSize {
		return nil, fmt.Errorf("storage: heap %q rowBytes %d exceeds page size %d", name, rowBytes, pageSize)
	}
	if pool == nil {
		return nil, fmt.Errorf("storage: heap %q needs a buffer pool", name)
	}
	return &Heap{
		name:        name,
		fileID:      int(nextFileID.Add(1)),
		pool:        pool,
		rowBytes:    rowBytes,
		pageBytes:   pageSize,
		slotsPerPag: pageSize / rowBytes,
	}, nil
}

// SetBacking attaches f as the heap's page mirror and registers the
// write-back hook with the buffer pool: from now on evicting or flushing a
// dirty page of this heap encodes it and writes it at a fixed per-page
// offset in f. Call before the heap sees concurrent use.
func (h *Heap) SetBacking(f vfs.File) {
	h.mu.Lock()
	h.backing = f
	h.mu.Unlock()
	h.pool.RegisterWriter(h.fileID, h.writeBackPage)
}

// CloseBacking unregisters the write-back hook and closes the mirror file,
// returning its Close error. Safe to call when no backing is attached.
func (h *Heap) CloseBacking() error {
	h.mu.Lock()
	f := h.backing
	h.backing = nil
	h.mu.Unlock()
	h.pool.RegisterWriter(h.fileID, nil)
	if f == nil {
		return nil
	}
	return f.Close()
}

// pageImageCap is the fixed byte budget one encoded page image gets in the
// backing file (length prefix included). Variable-width values can exceed
// their declared column lengths, so the budget carries generous slack;
// writeBackPage fails loudly if an image outgrows it.
func (h *Heap) pageImageCap() int { return 4*h.pageBytes + 1024 }

// writeBackPage persists one page image into the backing file. It runs
// under the pool's mutex (eviction/flush), takes the page latch only to
// snapshot the slots, and performs a single WriteAt — one faultable I/O
// per heap-flush boundary.
func (h *Heap) writeBackPage(pi int) error {
	h.mu.RLock()
	f := h.backing
	var pg *page
	if pi >= 0 && pi < len(h.pages) {
		pg = h.pages[pi]
	}
	h.mu.RUnlock()
	if f == nil || pg == nil {
		return nil
	}
	pg.mu.RLock()
	img := encodePage(pg.slots)
	pg.mu.RUnlock()
	capacity := h.pageImageCap()
	if len(img)+4 > capacity {
		return fmt.Errorf("storage: heap %q page %d image %dB exceeds its %dB budget", h.name, pi, len(img), capacity)
	}
	buf := make([]byte, 4, 4+len(img))
	binary.LittleEndian.PutUint32(buf, uint32(len(img)))
	buf = append(buf, img...)
	if _, err := f.WriteAt(buf, int64(pi)*int64(capacity)); err != nil {
		return fmt.Errorf("storage: heap %q page %d write-back: %w", h.name, pi, err)
	}
	return nil
}

// SyncBacking flushes this heap's dirty pages through the pool and fsyncs
// the mirror file. No-op without a backing file.
func (h *Heap) SyncBacking() error {
	h.mu.RLock()
	f := h.backing
	h.mu.RUnlock()
	if f == nil {
		return nil
	}
	if err := h.pool.Flush(); err != nil {
		return err
	}
	return f.Sync()
}

// touchRead records a read access, deliberately blanking any eviction
// write-back error. Scan is its only caller: a full-table reader keeps
// working when the mirror's disk is failing, because the mirror is not
// authoritative (the WAL is) and the in-memory pages it is reading are. The
// error stays observable via the pool's Err. Point reads (Get) propagate the
// same error instead — see Get.
func (h *Heap) touchRead(pi int) {
	_ = h.pool.Touch(PageKey{h.fileID, pi}, false)
}

// Name returns the heap's name.
func (h *Heap) Name() string { return h.name }

// FileID returns the heap's buffer-pool file identifier.
func (h *Heap) FileID() int { return h.fileID }

// RowBytes returns the per-tuple storage footprint.
func (h *Heap) RowBytes() int { return h.rowBytes }

// SlotsPerPage returns how many tuples fit on one page.
func (h *Heap) SlotsPerPage() int { return h.slotsPerPag }

// Len returns the number of live tuples.
func (h *Heap) Len() int { return int(h.liveCount.Load()) }

// NumPages returns the number of allocated pages.
func (h *Heap) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// Bytes returns the total allocated storage in bytes (pages × page payload),
// the quantity storage-overhead experiments report.
func (h *Heap) Bytes() int {
	return h.NumPages() * h.slotsPerPag * h.rowBytes
}

func (h *Heap) getPage(i int) *page {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if i < 0 || i >= len(h.pages) {
		return nil
	}
	return h.pages[i]
}

// Insert stores a copy of t and returns its RID. It reuses dead slots before
// allocating new pages.
func (h *Heap) Insert(t catalog.Tuple) (RID, error) {
	t = t.Clone()
	for {
		pi, pg := h.pageWithSpace()
		pg.mu.Lock()
		// Reuse a dead slot if any.
		for si := range pg.slots {
			if !pg.slots[si].live {
				pg.slots[si] = slot{tuple: t, live: true}
				pg.live++
				pg.mu.Unlock()
				h.liveCount.Add(1)
				return RID{Page: pi, Slot: si}, h.pool.Touch(PageKey{h.fileID, pi}, true)
			}
		}
		if len(pg.slots) < h.slotsPerPag {
			pg.slots = append(pg.slots, slot{tuple: t, live: true})
			pg.live++
			si := len(pg.slots) - 1
			pg.mu.Unlock()
			h.liveCount.Add(1)
			return RID{Page: pi, Slot: si}, h.pool.Touch(PageKey{h.fileID, pi}, true)
		}
		// Page filled up between pageWithSpace and the latch; retry.
		pg.mu.Unlock()
		h.dropFree(pi)
	}
}

// pageWithSpace returns a page believed to have a free slot, allocating one
// if necessary.
func (h *Heap) pageWithSpace() (int, *page) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.freePages) > 0 {
		pi := h.freePages[len(h.freePages)-1]
		pg := h.pages[pi]
		pg.mu.RLock()
		hasSpace := pg.live < h.slotsPerPag
		pg.mu.RUnlock()
		if hasSpace {
			return pi, pg
		}
		h.freePages = h.freePages[:len(h.freePages)-1]
	}
	pg := &page{}
	h.pages = append(h.pages, pg)
	pi := len(h.pages) - 1
	h.freePages = append(h.freePages, pi)
	return pi, pg
}

func (h *Heap) dropFree(pi int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, v := range h.freePages {
		if v == pi {
			h.freePages = append(h.freePages[:i], h.freePages[i+1:]...)
			return
		}
	}
}

func (h *Heap) noteFree(pi int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, v := range h.freePages {
		if v == pi {
			return
		}
	}
	h.freePages = append(h.freePages, pi)
}

// Get returns a copy of the tuple at rid. The page latch is held only while
// the tuple is copied out, so callers never see a partly-modified tuple and
// never block behind a transaction (only behind an in-flight single-tuple
// mutation).
//
// Unlike Scan, Get propagates the buffer-pool access error: a point read is
// the access path of indexed queries and of the DML cursor's re-read, and a
// dirty-eviction write-back failure there must fail the statement rather
// than silently shrink its result (callers that legitimately race with
// concurrent frees skip only errors.Is(err, ErrNotFound)).
func (h *Heap) Get(rid RID) (catalog.Tuple, error) {
	pg := h.getPage(rid.Page)
	if pg == nil {
		return nil, fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.mu.RLock()
	if rid.Slot < 0 || rid.Slot >= len(pg.slots) || !pg.slots[rid.Slot].live {
		pg.mu.RUnlock()
		return nil, fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	t := pg.slots[rid.Slot].tuple.Clone()
	pg.mu.RUnlock()
	// Touch outside the page latch: the pool may write back an evicted
	// victim, which takes that victim's page latch — never nest the two.
	if err := h.pool.Touch(PageKey{h.fileID, rid.Page}, false); err != nil {
		return nil, fmt.Errorf("storage: heap %q read %v: %w", h.name, rid, err)
	}
	return t, nil
}

// Update replaces the tuple at rid in place — the same slot on the same
// page — under the page latch. This is the in-place physical update the
// 2VNL rewrite implementation requires (§4): a scan can never return two
// physical records for the same logical tuple.
func (h *Heap) Update(rid RID, t catalog.Tuple) error {
	pg := h.getPage(rid.Page)
	if pg == nil {
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.mu.Lock()
	if rid.Slot < 0 || rid.Slot >= len(pg.slots) || !pg.slots[rid.Slot].live {
		pg.mu.Unlock()
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.slots[rid.Slot].tuple = t.Clone()
	pg.mu.Unlock()
	return h.pool.Touch(PageKey{h.fileID, rid.Page}, true)
}

// Delete removes the tuple at rid, freeing its slot for reuse.
func (h *Heap) Delete(rid RID) error {
	pg := h.getPage(rid.Page)
	if pg == nil {
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.mu.Lock()
	if rid.Slot < 0 || rid.Slot >= len(pg.slots) || !pg.slots[rid.Slot].live {
		pg.mu.Unlock()
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.slots[rid.Slot] = slot{}
	pg.live--
	pg.mu.Unlock()
	h.liveCount.Add(-1)
	h.noteFree(rid.Page)
	return h.pool.Touch(PageKey{h.fileID, rid.Page}, true)
}

// Scan calls fn for every live tuple. Each page's latch is held only while
// that page's live tuples are copied out; fn runs without any latch held, so
// it may freely read or write the heap. Scan observes each slot at most
// once; tuples inserted into already-visited pages during the scan are not
// observed (standard heap-scan semantics). Returning false from fn stops the
// scan early.
func (h *Heap) Scan(fn func(RID, catalog.Tuple) bool) {
	n := h.NumPages()
	var buf []struct {
		rid RID
		t   catalog.Tuple
	}
	for pi := 0; pi < n; pi++ {
		pg := h.getPage(pi)
		if pg == nil {
			return
		}
		buf = buf[:0]
		pg.mu.RLock()
		touched := false
		if pg.live > 0 {
			touched = true
			for si := range pg.slots {
				if pg.slots[si].live {
					buf = append(buf, struct {
						rid RID
						t   catalog.Tuple
					}{RID{pi, si}, pg.slots[si].tuple.Clone()})
				}
			}
		}
		pg.mu.RUnlock()
		if touched {
			h.touchRead(pi)
		}
		for _, e := range buf {
			if !fn(e.rid, e.t) {
				return
			}
		}
	}
}

// UpdateFunc applies fn to the tuple at rid atomically under the page latch:
// read-modify-write as one short critical section. fn receives a copy and
// returns the replacement tuple. This is the primitive the 2VNL maintenance
// cursor uses so that a reader latching the page sees either the old or the
// new complete tuple state, never an intermediate one.
func (h *Heap) UpdateFunc(rid RID, fn func(catalog.Tuple) catalog.Tuple) error {
	pg := h.getPage(rid.Page)
	if pg == nil {
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.mu.Lock()
	if rid.Slot < 0 || rid.Slot >= len(pg.slots) || !pg.slots[rid.Slot].live {
		pg.mu.Unlock()
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.slots[rid.Slot].tuple = fn(pg.slots[rid.Slot].tuple.Clone()).Clone()
	pg.mu.Unlock()
	return h.pool.Touch(PageKey{h.fileID, rid.Page}, true)
}
