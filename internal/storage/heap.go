package storage

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
)

// RID is a record identifier: the physical address of a tuple within a heap.
type RID struct {
	Page int
	Slot int
}

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

// ErrNoSuchTuple is returned when an RID does not name a live tuple.
var ErrNoSuchTuple = errors.New("storage: no such tuple")

// slot holds one tuple. Dead slots are left in place and reused by later
// inserts; they still occupy their page's slot array but not its byte
// budget.
type slot struct {
	tuple catalog.Tuple
	live  bool
}

// page is a slotted page. Its latch (mu) is the paper's "short-duration
// lock": held only across a single tuple read or mutation, never until
// commit.
type page struct {
	mu    sync.RWMutex
	slots []slot
	live  int // live slot count
}

// Heap is an unordered collection of tuples stored on slotted pages. Each
// tuple occupies rowBytes bytes of its page (fixed-width accounting, as the
// paper's Figure 3 measures schemas by declared column lengths), so a page
// holds pageSize/rowBytes tuples. Widening a schema — as the 2VNL extension
// does — therefore reduces tuples per page and increases scan I/O, an effect
// the paper calls out in §6.
type Heap struct {
	name        string
	fileID      int
	pool        *BufferPool
	rowBytes    int
	slotsPerPag int

	mu    sync.RWMutex // guards pages slice growth and freePages
	pages []*page
	// freePages holds indexes of pages that had a free slot when last
	// observed; it may contain stale entries, which Insert skips.
	freePages []int

	liveCount atomic.Int64
}

var nextFileID atomic.Int64

// NewHeap creates a heap named name whose tuples each occupy rowBytes bytes,
// attached to the given buffer pool. pageSize 0 selects DefaultPageSize.
// rowBytes must be positive and at most pageSize.
func NewHeap(name string, rowBytes, pageSize int, pool *BufferPool) (*Heap, error) {
	if pageSize == 0 {
		pageSize = DefaultPageSize
	}
	if rowBytes <= 0 {
		return nil, fmt.Errorf("storage: heap %q rowBytes must be positive, got %d", name, rowBytes)
	}
	if rowBytes > pageSize {
		return nil, fmt.Errorf("storage: heap %q rowBytes %d exceeds page size %d", name, rowBytes, pageSize)
	}
	if pool == nil {
		return nil, fmt.Errorf("storage: heap %q needs a buffer pool", name)
	}
	return &Heap{
		name:        name,
		fileID:      int(nextFileID.Add(1)),
		pool:        pool,
		rowBytes:    rowBytes,
		slotsPerPag: pageSize / rowBytes,
	}, nil
}

// Name returns the heap's name.
func (h *Heap) Name() string { return h.name }

// FileID returns the heap's buffer-pool file identifier.
func (h *Heap) FileID() int { return h.fileID }

// RowBytes returns the per-tuple storage footprint.
func (h *Heap) RowBytes() int { return h.rowBytes }

// SlotsPerPage returns how many tuples fit on one page.
func (h *Heap) SlotsPerPage() int { return h.slotsPerPag }

// Len returns the number of live tuples.
func (h *Heap) Len() int { return int(h.liveCount.Load()) }

// NumPages returns the number of allocated pages.
func (h *Heap) NumPages() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.pages)
}

// Bytes returns the total allocated storage in bytes (pages × page payload),
// the quantity storage-overhead experiments report.
func (h *Heap) Bytes() int {
	return h.NumPages() * h.slotsPerPag * h.rowBytes
}

func (h *Heap) getPage(i int) *page {
	h.mu.RLock()
	defer h.mu.RUnlock()
	if i < 0 || i >= len(h.pages) {
		return nil
	}
	return h.pages[i]
}

// Insert stores a copy of t and returns its RID. It reuses dead slots before
// allocating new pages.
func (h *Heap) Insert(t catalog.Tuple) (RID, error) {
	t = t.Clone()
	for {
		pi, pg := h.pageWithSpace()
		pg.mu.Lock()
		// Reuse a dead slot if any.
		for si := range pg.slots {
			if !pg.slots[si].live {
				pg.slots[si] = slot{tuple: t, live: true}
				pg.live++
				pg.mu.Unlock()
				h.pool.Touch(PageKey{h.fileID, pi}, true)
				h.liveCount.Add(1)
				return RID{Page: pi, Slot: si}, nil
			}
		}
		if len(pg.slots) < h.slotsPerPag {
			pg.slots = append(pg.slots, slot{tuple: t, live: true})
			pg.live++
			si := len(pg.slots) - 1
			pg.mu.Unlock()
			h.pool.Touch(PageKey{h.fileID, pi}, true)
			h.liveCount.Add(1)
			return RID{Page: pi, Slot: si}, nil
		}
		// Page filled up between pageWithSpace and the latch; retry.
		pg.mu.Unlock()
		h.dropFree(pi)
	}
}

// pageWithSpace returns a page believed to have a free slot, allocating one
// if necessary.
func (h *Heap) pageWithSpace() (int, *page) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for len(h.freePages) > 0 {
		pi := h.freePages[len(h.freePages)-1]
		pg := h.pages[pi]
		pg.mu.RLock()
		hasSpace := pg.live < h.slotsPerPag
		pg.mu.RUnlock()
		if hasSpace {
			return pi, pg
		}
		h.freePages = h.freePages[:len(h.freePages)-1]
	}
	pg := &page{}
	h.pages = append(h.pages, pg)
	pi := len(h.pages) - 1
	h.freePages = append(h.freePages, pi)
	return pi, pg
}

func (h *Heap) dropFree(pi int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i, v := range h.freePages {
		if v == pi {
			h.freePages = append(h.freePages[:i], h.freePages[i+1:]...)
			return
		}
	}
}

func (h *Heap) noteFree(pi int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for _, v := range h.freePages {
		if v == pi {
			return
		}
	}
	h.freePages = append(h.freePages, pi)
}

// Get returns a copy of the tuple at rid. The page latch is held only while
// the tuple is copied out, so callers never see a partly-modified tuple and
// never block behind a transaction (only behind an in-flight single-tuple
// mutation).
func (h *Heap) Get(rid RID) (catalog.Tuple, error) {
	pg := h.getPage(rid.Page)
	if pg == nil {
		return nil, fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.mu.RLock()
	defer pg.mu.RUnlock()
	if rid.Slot < 0 || rid.Slot >= len(pg.slots) || !pg.slots[rid.Slot].live {
		return nil, fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	h.pool.Touch(PageKey{h.fileID, rid.Page}, false)
	return pg.slots[rid.Slot].tuple.Clone(), nil
}

// Update replaces the tuple at rid in place — the same slot on the same
// page — under the page latch. This is the in-place physical update the
// 2VNL rewrite implementation requires (§4): a scan can never return two
// physical records for the same logical tuple.
func (h *Heap) Update(rid RID, t catalog.Tuple) error {
	pg := h.getPage(rid.Page)
	if pg == nil {
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if rid.Slot < 0 || rid.Slot >= len(pg.slots) || !pg.slots[rid.Slot].live {
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.slots[rid.Slot].tuple = t.Clone()
	h.pool.Touch(PageKey{h.fileID, rid.Page}, true)
	return nil
}

// Delete removes the tuple at rid, freeing its slot for reuse.
func (h *Heap) Delete(rid RID) error {
	pg := h.getPage(rid.Page)
	if pg == nil {
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.mu.Lock()
	if rid.Slot < 0 || rid.Slot >= len(pg.slots) || !pg.slots[rid.Slot].live {
		pg.mu.Unlock()
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.slots[rid.Slot] = slot{}
	pg.live--
	pg.mu.Unlock()
	h.pool.Touch(PageKey{h.fileID, rid.Page}, true)
	h.liveCount.Add(-1)
	h.noteFree(rid.Page)
	return nil
}

// Scan calls fn for every live tuple. Each page's latch is held only while
// that page's live tuples are copied out; fn runs without any latch held, so
// it may freely read or write the heap. Scan observes each slot at most
// once; tuples inserted into already-visited pages during the scan are not
// observed (standard heap-scan semantics). Returning false from fn stops the
// scan early.
func (h *Heap) Scan(fn func(RID, catalog.Tuple) bool) {
	n := h.NumPages()
	var buf []struct {
		rid RID
		t   catalog.Tuple
	}
	for pi := 0; pi < n; pi++ {
		pg := h.getPage(pi)
		if pg == nil {
			return
		}
		buf = buf[:0]
		pg.mu.RLock()
		if pg.live > 0 {
			h.pool.Touch(PageKey{h.fileID, pi}, false)
			for si := range pg.slots {
				if pg.slots[si].live {
					buf = append(buf, struct {
						rid RID
						t   catalog.Tuple
					}{RID{pi, si}, pg.slots[si].tuple.Clone()})
				}
			}
		}
		pg.mu.RUnlock()
		for _, e := range buf {
			if !fn(e.rid, e.t) {
				return
			}
		}
	}
}

// UpdateFunc applies fn to the tuple at rid atomically under the page latch:
// read-modify-write as one short critical section. fn receives a copy and
// returns the replacement tuple. This is the primitive the 2VNL maintenance
// cursor uses so that a reader latching the page sees either the old or the
// new complete tuple state, never an intermediate one.
func (h *Heap) UpdateFunc(rid RID, fn func(catalog.Tuple) catalog.Tuple) error {
	pg := h.getPage(rid.Page)
	if pg == nil {
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if rid.Slot < 0 || rid.Slot >= len(pg.slots) || !pg.slots[rid.Slot].live {
		return fmt.Errorf("%w: %v in %s", ErrNoSuchTuple, rid, h.name)
	}
	h.pool.Touch(PageKey{h.fileID, rid.Page}, true)
	pg.slots[rid.Slot].tuple = fn(pg.slots[rid.Slot].tuple.Clone()).Clone()
	return nil
}
