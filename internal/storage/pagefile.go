// Page-image serialization for the heap's backing-file mirror. The format
// is deliberately local to this package (storage must not depend on the
// WAL's wire format): one uvarint slot count, then per slot a liveness
// byte and, for live slots, the tuple. The mirror is redo state only —
// recovery rebuilds heaps from the log — so the format needs determinism,
// not evolution headroom.
package storage

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/catalog"
)

// Value wire kinds for page images.
const (
	pfNull byte = iota
	pfInt
	pfFloat
	pfString
	pfBool
	pfDate
)

func appendPageValue(buf []byte, v catalog.Value) []byte {
	switch v.Kind() {
	case catalog.TypeNull:
		return append(buf, pfNull)
	case catalog.TypeInt:
		buf = append(buf, pfInt)
		return binary.AppendVarint(buf, v.Int())
	case catalog.TypeFloat:
		buf = append(buf, pfFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case catalog.TypeString:
		buf = append(buf, pfString)
		buf = binary.AppendUvarint(buf, uint64(len(v.Str())))
		return append(buf, v.Str()...)
	case catalog.TypeBool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		return append(buf, pfBool, b)
	case catalog.TypeDate:
		buf = append(buf, pfDate)
		return binary.AppendVarint(buf, v.Days())
	default:
		panic(fmt.Sprintf("storage: cannot encode value kind %v", v.Kind()))
	}
}

func readPageValue(buf []byte) (catalog.Value, []byte, error) {
	if len(buf) == 0 {
		return catalog.Null, nil, fmt.Errorf("storage: truncated page value")
	}
	kind := buf[0]
	buf = buf[1:]
	switch kind {
	case pfNull:
		return catalog.Null, buf, nil
	case pfInt:
		n, sz := binary.Varint(buf)
		if sz <= 0 {
			return catalog.Null, nil, fmt.Errorf("storage: bad page varint")
		}
		return catalog.NewInt(n), buf[sz:], nil
	case pfFloat:
		if len(buf) < 8 {
			return catalog.Null, nil, fmt.Errorf("storage: truncated page float")
		}
		f := math.Float64frombits(binary.LittleEndian.Uint64(buf))
		return catalog.NewFloat(f), buf[8:], nil
	case pfString:
		n, sz := binary.Uvarint(buf)
		if sz <= 0 || uint64(len(buf[sz:])) < n {
			return catalog.Null, nil, fmt.Errorf("storage: truncated page string")
		}
		s := string(buf[sz : sz+int(n)])
		return catalog.NewString(s), buf[sz+int(n):], nil
	case pfBool:
		if len(buf) < 1 {
			return catalog.Null, nil, fmt.Errorf("storage: truncated page bool")
		}
		return catalog.NewBool(buf[0] != 0), buf[1:], nil
	case pfDate:
		n, sz := binary.Varint(buf)
		if sz <= 0 {
			return catalog.Null, nil, fmt.Errorf("storage: bad page date")
		}
		return catalog.NewDate(n), buf[sz:], nil
	default:
		return catalog.Null, nil, fmt.Errorf("storage: unknown page value kind %d", kind)
	}
}

// encodePage serializes a page's slot array. The caller holds the page
// latch (read side suffices).
func encodePage(slots []slot) []byte {
	buf := binary.AppendUvarint(nil, uint64(len(slots)))
	for _, s := range slots {
		if !s.live {
			buf = append(buf, 0)
			continue
		}
		buf = append(buf, 1)
		buf = binary.AppendUvarint(buf, uint64(len(s.tuple)))
		for _, v := range s.tuple {
			buf = appendPageValue(buf, v)
		}
	}
	return buf
}

// decodePage parses an image produced by encodePage. Used by tests and
// offline inspection; live recovery replays the WAL instead.
func decodePage(buf []byte) ([]slot, error) {
	n, sz := binary.Uvarint(buf)
	if sz <= 0 || n > 1<<24 {
		return nil, fmt.Errorf("storage: bad page slot count")
	}
	buf = buf[sz:]
	slots := make([]slot, n)
	for i := range slots {
		if len(buf) < 1 {
			return nil, fmt.Errorf("storage: truncated page slot")
		}
		live := buf[0] != 0
		buf = buf[1:]
		if !live {
			continue
		}
		arity, asz := binary.Uvarint(buf)
		if asz <= 0 || arity > 1<<20 {
			return nil, fmt.Errorf("storage: bad page tuple arity")
		}
		buf = buf[asz:]
		t := make(catalog.Tuple, arity)
		var err error
		for j := range t {
			t[j], buf, err = readPageValue(buf)
			if err != nil {
				return nil, err
			}
		}
		slots[i] = slot{tuple: t, live: true}
	}
	return slots, nil
}
