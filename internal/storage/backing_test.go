package storage

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/catalog"
	"repro/internal/vfs"
)

// TestPageCodecRoundTrip: encodePage/decodePage must round-trip every
// value kind plus dead slots, since the mirror file is read back by
// offline tooling.
func TestPageCodecRoundTrip(t *testing.T) {
	slots := []slot{
		{live: true, tuple: catalog.Tuple{
			catalog.NewInt(-42),
			catalog.NewFloat(3.5),
			catalog.NewString("hello"),
			catalog.NewBool(true),
			catalog.NewDate(19000),
		}},
		{live: false},
		{live: true, tuple: catalog.Tuple{catalog.NewInt(0), catalog.NewBool(false)}},
		{live: true, tuple: catalog.Tuple{catalog.NewString("")}},
	}
	buf := encodePage(slots)
	got, err := decodePage(buf)
	if err != nil {
		t.Fatalf("decodePage: %v", err)
	}
	if len(got) != len(slots) {
		t.Fatalf("decoded %d slots, want %d", len(got), len(slots))
	}
	for i, s := range slots {
		if got[i].live != s.live {
			t.Fatalf("slot %d live = %v, want %v", i, got[i].live, s.live)
		}
		if !s.live {
			continue
		}
		if !catalog.TuplesEqual(got[i].tuple, s.tuple) {
			t.Fatalf("slot %d decoded %v, want %v", i, got[i].tuple, s.tuple)
		}
	}
}

// TestSetBackingMirrorsEvictedPages: with a backing file attached and a
// one-page pool, filling several pages forces eviction write-backs; the
// mirrored images must decode to the heap's logical content.
func TestSetBackingMirrorsEvictedPages(t *testing.T) {
	fs := vfs.NewFaultFS(nil)
	f, err := fs.Create("t.heap")
	if err != nil {
		t.Fatal(err)
	}
	h, _ := newTestHeap(t, 20, 60, 1) // 3 slots per page
	h.SetBacking(f)
	const n = 9 // three pages
	for k := int64(0); k < n; k++ {
		if _, err := h.Insert(intTuple(k, k*10)); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.SyncBacking(); err != nil {
		t.Fatal(err)
	}
	raw, err := fs.DurableBytes("t.heap")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]int64{}
	capacity := 4*60 + 1024
	for pi := 0; pi*capacity < len(raw); pi++ {
		img := raw[pi*capacity:]
		if len(img) < 4 {
			break
		}
		size := int(uint32(img[0]) | uint32(img[1])<<8 | uint32(img[2])<<16 | uint32(img[3])<<24)
		if size == 0 {
			continue
		}
		slots, err := decodePage(img[4 : 4+size])
		if err != nil {
			t.Fatalf("page %d: %v", pi, err)
		}
		for _, s := range slots {
			if s.live {
				seen[s.tuple[0].Int()] = s.tuple[1].Int()
			}
		}
	}
	if len(seen) != n {
		t.Fatalf("mirror holds %d live tuples, want %d", len(seen), n)
	}
	for k := int64(0); k < n; k++ {
		if seen[k] != k*10 {
			t.Fatalf("mirror tuple %d = %d, want %d", k, seen[k], k*10)
		}
	}
	if err := h.CloseBacking(); err != nil {
		t.Fatal(err)
	}
}

// TestPoolFlushSurfacesWriterErrors: a registered writer that fails must
// surface from Flush, keep the page dirty for the retry, and succeed once
// the writer heals.
func TestPoolFlushSurfacesWriterErrors(t *testing.T) {
	pool := NewBufferPool(4)
	boom := errors.New("disk on fire")
	failing := true
	var wrote []int
	pool.RegisterWriter(7, func(page int) error {
		if failing {
			return boom
		}
		wrote = append(wrote, page)
		return nil
	})
	if err := pool.Touch(PageKey{7, 0}, true); err != nil {
		t.Fatal(err)
	}
	if err := pool.Flush(); !errors.Is(err, boom) {
		t.Fatalf("Flush error = %v, want the writer's", err)
	}
	// The page stayed dirty: a healed retry writes it.
	failing = false
	if err := pool.Flush(); err != nil {
		t.Fatalf("healed Flush: %v", err)
	}
	if len(wrote) != 1 || wrote[0] != 0 {
		t.Fatalf("healed Flush wrote %v, want [0]", wrote)
	}
	// And now it is clean: another Flush writes nothing.
	wrote = nil
	if err := pool.Flush(); err != nil {
		t.Fatal(err)
	}
	if len(wrote) != 0 {
		t.Fatalf("clean Flush rewrote %v", wrote)
	}
}

// TestPoolEvictionWriterErrorLatchedInErr: an eviction write-back failure
// surfaces from the Touch that caused it AND is latched in Err() — but the
// eviction itself still proceeds, because the WAL, not the mirror, is the
// durability authority.
func TestPoolEvictionWriterErrorLatchedInErr(t *testing.T) {
	pool := NewBufferPool(1)
	boom := errors.New("disk on fire")
	pool.RegisterWriter(7, func(page int) error { return boom })
	if err := pool.Touch(PageKey{7, 0}, true); err != nil {
		t.Fatal(err)
	}
	// Inserting a second page evicts the dirty first one; its write-back
	// fails but the insert goes through.
	if err := pool.Touch(PageKey{7, 1}, true); !errors.Is(err, boom) {
		t.Fatalf("Touch during failed write-back = %v, want the writer's error", err)
	}
	if err := pool.Err(); !errors.Is(err, boom) {
		t.Fatalf("Err() = %v, want the latched writer error", err)
	}
	// The victim was still evicted and the new page admitted: touching the
	// new page again is a hit, the old one a miss.
	before := pool.Stats()
	if err := pool.Touch(PageKey{7, 1}, false); err != nil {
		t.Fatal(err)
	}
	if d := pool.Stats().Sub(before); d.Hits != 1 || d.Misses != 0 {
		t.Fatalf("re-touch of the admitted page: %+v, want a pure hit", d)
	}
	pool.Reset()
	if err := pool.Err(); err != nil {
		t.Fatalf("Err() after Reset = %v, want nil", err)
	}
}

// TestWriteBackBudgetError: a page whose encoded image exceeds the backing
// slot budget must fail loudly, not corrupt a neighbor's offset.
func TestWriteBackBudgetError(t *testing.T) {
	fs := vfs.NewFaultFS(nil)
	f, err := fs.Create("t.heap")
	if err != nil {
		t.Fatal(err)
	}
	h, _ := newTestHeap(t, 20, 60, 4)
	h.SetBacking(f)
	// A tuple far larger than the 4*pageBytes+1024 budget: rowBytes is a
	// capacity hint, not an enforced limit, so this inserts fine but must
	// be rejected at mirror time.
	big := catalog.Tuple{catalog.NewString(strings.Repeat("x", 4*60+2048))}
	if _, err := h.Insert(big); err != nil {
		t.Fatal(err)
	}
	err = h.SyncBacking()
	if err == nil {
		t.Fatal("SyncBacking mirrored a page image over its budget")
	}
	if !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("budget error = %v", err)
	}
}
