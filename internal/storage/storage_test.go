package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/catalog"
)

func newTestHeap(t *testing.T, rowBytes, pageSize, poolPages int) (*Heap, *BufferPool) {
	t.Helper()
	pool := NewBufferPool(poolPages)
	h, err := NewHeap("t", rowBytes, pageSize, pool)
	if err != nil {
		t.Fatalf("NewHeap: %v", err)
	}
	return h, pool
}

func intTuple(vs ...int64) catalog.Tuple {
	t := make(catalog.Tuple, len(vs))
	for i, v := range vs {
		t[i] = catalog.NewInt(v)
	}
	return t
}

func TestHeapInsertGet(t *testing.T) {
	h, _ := newTestHeap(t, 10, 100, 8)
	rid, err := h.Insert(intTuple(1, 2))
	if err != nil {
		t.Fatalf("Insert: %v", err)
	}
	got, err := h.Get(rid)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if !catalog.TuplesEqual(got, intTuple(1, 2)) {
		t.Errorf("Get = %v", got)
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestHeapGetReturnsCopy(t *testing.T) {
	h, _ := newTestHeap(t, 10, 100, 8)
	rid, _ := h.Insert(intTuple(1))
	got, _ := h.Get(rid)
	got[0] = catalog.NewInt(99)
	again, _ := h.Get(rid)
	if again[0].Int() != 1 {
		t.Error("Get exposed internal storage")
	}
}

func TestHeapUpdateInPlace(t *testing.T) {
	h, _ := newTestHeap(t, 10, 100, 8)
	rid, _ := h.Insert(intTuple(1))
	if err := h.Update(rid, intTuple(2)); err != nil {
		t.Fatalf("Update: %v", err)
	}
	got, _ := h.Get(rid)
	if got[0].Int() != 2 {
		t.Errorf("after update: %v", got)
	}
	// In place: same RID, still exactly one tuple, no new pages.
	if h.Len() != 1 {
		t.Errorf("Len = %d after in-place update", h.Len())
	}
	count := 0
	h.Scan(func(r RID, tu catalog.Tuple) bool {
		count++
		if r != rid {
			t.Errorf("scan found tuple at %v, want %v (update must not move tuples)", r, rid)
		}
		return true
	})
	if count != 1 {
		t.Errorf("scan saw %d tuples, want 1 — scans must never see two physical records for one tuple", count)
	}
}

func TestHeapDeleteAndSlotReuse(t *testing.T) {
	h, _ := newTestHeap(t, 10, 30, 8) // 3 slots per page
	var rids []RID
	for i := int64(0); i < 6; i++ {
		rid, _ := h.Insert(intTuple(i))
		rids = append(rids, rid)
	}
	if h.NumPages() != 2 {
		t.Fatalf("NumPages = %d, want 2", h.NumPages())
	}
	if err := h.Delete(rids[1]); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := h.Get(rids[1]); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("Get deleted = %v, want ErrNoSuchTuple", err)
	}
	if err := h.Delete(rids[1]); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("double Delete = %v, want ErrNoSuchTuple", err)
	}
	// Next insert must reuse the freed slot rather than allocate page 3.
	rid, _ := h.Insert(intTuple(100))
	if rid != rids[1] {
		t.Errorf("insert after delete went to %v, want reused slot %v", rid, rids[1])
	}
	if h.NumPages() != 2 {
		t.Errorf("NumPages = %d after reuse, want 2", h.NumPages())
	}
}

func TestHeapErrors(t *testing.T) {
	pool := NewBufferPool(4)
	if _, err := NewHeap("t", 0, 100, pool); err == nil {
		t.Error("rowBytes 0 accepted")
	}
	if _, err := NewHeap("t", 200, 100, pool); err == nil {
		t.Error("rowBytes > pageSize accepted")
	}
	if _, err := NewHeap("t", 10, 100, nil); err == nil {
		t.Error("nil pool accepted")
	}
	h, _ := NewHeap("t", 10, 100, pool)
	if _, err := h.Get(RID{5, 0}); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("Get bad page = %v", err)
	}
	if err := h.Update(RID{0, 0}, intTuple(1)); !errors.Is(err, ErrNoSuchTuple) {
		t.Errorf("Update bad rid = %v", err)
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h, _ := newTestHeap(t, 10, 100, 8)
	for i := int64(0); i < 20; i++ {
		h.Insert(intTuple(i))
	}
	n := 0
	h.Scan(func(RID, catalog.Tuple) bool { n++; return n < 5 })
	if n != 5 {
		t.Errorf("scan visited %d tuples after early stop, want 5", n)
	}
}

func TestHeapUpdateFunc(t *testing.T) {
	h, _ := newTestHeap(t, 10, 100, 8)
	rid, _ := h.Insert(intTuple(10))
	err := h.UpdateFunc(rid, func(old catalog.Tuple) catalog.Tuple {
		return intTuple(old[0].Int() + 5)
	})
	if err != nil {
		t.Fatalf("UpdateFunc: %v", err)
	}
	got, _ := h.Get(rid)
	if got[0].Int() != 15 {
		t.Errorf("UpdateFunc result = %v", got)
	}
}

func TestSlotsPerPageAccounting(t *testing.T) {
	// A 42-byte row on an 8 KiB page (DailySales base schema) fits 195
	// tuples; the 51-byte extended schema fits 160. Fewer tuples per page
	// is the §6 scan-I/O effect.
	pool := NewBufferPool(4)
	base, _ := NewHeap("base", 42, 8192, pool)
	ext, _ := NewHeap("ext", 51, 8192, pool)
	if base.SlotsPerPage() != 195 || ext.SlotsPerPage() != 160 {
		t.Errorf("slots per page = %d, %d; want 195, 160", base.SlotsPerPage(), ext.SlotsPerPage())
	}
}

func TestBufferPoolCounts(t *testing.T) {
	p := NewBufferPool(2)
	k1, k2, k3 := PageKey{1, 0}, PageKey{1, 1}, PageKey{1, 2}
	p.Touch(k1, false) // miss
	p.Touch(k1, false) // hit
	p.Touch(k2, true)  // miss, dirty
	p.Touch(k3, false) // miss, evicts k1 (clean)
	s := p.Stats()
	if s.Misses != 3 || s.Hits != 1 || s.WriteBacks != 0 {
		t.Errorf("stats = %+v", s)
	}
	p.Touch(k1, false) // miss, evicts k2 (dirty) -> write-back
	s = p.Stats()
	if s.WriteBacks != 1 {
		t.Errorf("write-backs = %d, want 1", s.WriteBacks)
	}
	if s.Reads() != 4 || s.Total() != 5 {
		t.Errorf("Reads=%d Total=%d", s.Reads(), s.Total())
	}
}

func TestBufferPoolLRUOrder(t *testing.T) {
	p := NewBufferPool(2)
	a, b, c := PageKey{1, 0}, PageKey{1, 1}, PageKey{1, 2}
	p.Touch(a, false)
	p.Touch(b, false)
	p.Touch(a, false) // a is now MRU
	p.Touch(c, false) // evicts b, not a
	p.Touch(a, false) // must be a hit
	s := p.Stats()
	if s.Hits != 2 {
		t.Errorf("hits = %d, want 2 (LRU should have kept page a)", s.Hits)
	}
}

func TestBufferPoolFlushAndReset(t *testing.T) {
	p := NewBufferPool(4)
	p.Touch(PageKey{1, 0}, true)
	p.Touch(PageKey{1, 1}, true)
	p.Flush()
	if wb := p.Stats().WriteBacks; wb != 2 {
		t.Errorf("flush wrote %d pages, want 2", wb)
	}
	p.Flush() // now clean: no further writes
	if wb := p.Stats().WriteBacks; wb != 2 {
		t.Errorf("second flush wrote pages: %d", wb)
	}
	p.Reset()
	if s := p.Stats(); s != (IOStats{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestIOStatsSub(t *testing.T) {
	a := IOStats{Hits: 10, Misses: 5, WriteBacks: 2}
	b := IOStats{Hits: 4, Misses: 1, WriteBacks: 1}
	d := a.Sub(b)
	if d != (IOStats{Hits: 6, Misses: 4, WriteBacks: 1}) {
		t.Errorf("Sub = %+v", d)
	}
}

// TestHeapConcurrentReadersWriter checks the latch guarantee: concurrent
// scans during in-place updates never observe a torn tuple. Tuples are kept
// internally consistent (both fields always equal); any observed mismatch
// means a reader saw a half-applied update.
func TestHeapConcurrentReadersWriter(t *testing.T) {
	h, _ := newTestHeap(t, 10, 100, 64)
	var rids []RID
	for i := int64(0); i < 50; i++ {
		rid, _ := h.Insert(intTuple(i, i))
		rids = append(rids, rid)
	}
	var writers, readers sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			v := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, rid := range rids {
					v++
					_ = h.Update(rid, intTuple(v, v))
				}
			}
		}(int64(w) * 1000)
	}
	var torn int64
	var mu sync.Mutex
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 200; i++ {
				h.Scan(func(_ RID, tu catalog.Tuple) bool {
					if tu[0].Int() != tu[1].Int() {
						mu.Lock()
						torn++
						mu.Unlock()
					}
					return true
				})
			}
		}()
	}
	readers.Wait() // writers churn the whole time readers scan
	close(stop)
	writers.Wait()
	if torn != 0 {
		t.Errorf("observed %d torn tuples; page latches must prevent this", torn)
	}
}

func TestHeapConcurrentInserts(t *testing.T) {
	h, _ := newTestHeap(t, 10, 50, 64) // 5 slots per page
	const goroutines, per = 8, 200
	var wg sync.WaitGroup
	ridCh := make(chan RID, goroutines*per)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rid, err := h.Insert(intTuple(int64(g), int64(i)))
				if err != nil {
					t.Errorf("Insert: %v", err)
					return
				}
				ridCh <- rid
			}
		}(g)
	}
	wg.Wait()
	close(ridCh)
	seen := make(map[RID]bool)
	for rid := range ridCh {
		if seen[rid] {
			t.Fatalf("RID %v assigned twice", rid)
		}
		seen[rid] = true
	}
	if h.Len() != goroutines*per {
		t.Errorf("Len = %d, want %d", h.Len(), goroutines*per)
	}
}

// Property: after an arbitrary interleaving of inserts and deletes, Len()
// matches the live set and Scan visits exactly the live tuples.
func TestHeapLiveSetProperty(t *testing.T) {
	f := func(ops []bool) bool {
		h, _ := NewHeap("p", 8, 64, NewBufferPool(16))
		live := make(map[RID]int64)
		var next int64
		var order []RID
		for _, ins := range ops {
			if ins || len(order) == 0 {
				rid, err := h.Insert(intTuple(next))
				if err != nil {
					return false
				}
				live[rid] = next
				order = append(order, rid)
				next++
			} else {
				rid := order[len(order)-1]
				order = order[:len(order)-1]
				if err := h.Delete(rid); err != nil {
					return false
				}
				delete(live, rid)
			}
		}
		if h.Len() != len(live) {
			return false
		}
		seen := 0
		ok := true
		h.Scan(func(rid RID, tu catalog.Tuple) bool {
			seen++
			want, present := live[rid]
			if !present || tu[0].Int() != want {
				ok = false
			}
			return true
		})
		return ok && seen == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHeapBytesGrowth(t *testing.T) {
	h, _ := newTestHeap(t, 10, 100, 8)
	if h.Bytes() != 0 {
		t.Errorf("empty heap Bytes = %d", h.Bytes())
	}
	for i := 0; i < 25; i++ { // 10 slots/page -> 3 pages
		h.Insert(intTuple(int64(i)))
	}
	if h.NumPages() != 3 || h.Bytes() != 300 {
		t.Errorf("pages=%d bytes=%d, want 3/300", h.NumPages(), h.Bytes())
	}
}

func BenchmarkHeapInsert(b *testing.B) {
	h, _ := NewHeap("b", 51, 8192, NewBufferPool(1024))
	tu := intTuple(1, 2, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(tu); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	h, _ := NewHeap("b", 51, 8192, NewBufferPool(1024))
	for i := int64(0); i < 10000; i++ {
		h.Insert(intTuple(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		h.Scan(func(RID, catalog.Tuple) bool { n++; return true })
		if n != 10000 {
			b.Fatalf("scan saw %d", n)
		}
	}
}

func ExampleHeap() {
	pool := NewBufferPool(16)
	h, _ := NewHeap("demo", 16, 64, pool)
	rid, _ := h.Insert(catalog.Tuple{catalog.NewString("hello")})
	tu, _ := h.Get(rid)
	fmt.Println(tu)
	// Output: (hello)
}
