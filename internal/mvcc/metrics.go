package mvcc

import (
	"strings"

	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/txn"
)

// metricPrefix derives a metric-name-safe prefix from a scheme name:
// "MV2PL/cache3" becomes "mvcc_mv2pl_cache3". Lower-cased, with every
// non-alphanumeric run collapsed to one underscore.
func metricPrefix(name string) string {
	var b strings.Builder
	b.WriteString("mvcc_")
	us := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			us = false
		default:
			if !us {
				b.WriteByte('_')
				us = true
			}
		}
	}
	return strings.TrimRight(b.String(), "_")
}

// instrument wires a scheme's private engine pool and (when the scheme
// locks) its lock manager into the default registry under the scheme's
// prefix, so lock waits, deadlock aborts, and I/O are observable per scheme
// — the §6 comparison quantities — without threading a registry through
// every constructor. mgr may be nil for lock-free schemes.
func instrument(d *db.Database, mgr *txn.Manager, name string) {
	prefix := metricPrefix(name)
	d.Pool().Instrument(obs.Default(), prefix+"_pool")
	if mgr != nil {
		mgr.Instrument(obs.Default(), prefix)
	}
}
