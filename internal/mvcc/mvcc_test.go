package mvcc

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"
)

func allSchemes(t *testing.T) []Scheme {
	t.Helper()
	cfg := Config{}
	s2, err := NewS2PL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := NewTwoV2PL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := NewMV2PL(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mvc, err := NewMV2PL(Config{CacheSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	off, err := NewOffline(cfg)
	if err != nil {
		t.Fatal(err)
	}
	vnl, err := NewVNL(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	vnl3, err := NewVNL(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	return []Scheme{s2, v2, mv, mvc, off, vnl, vnl3}
}

func load(t *testing.T, s Scheme, n int) {
	t.Helper()
	rows := make([]KV, n)
	for i := range rows {
		rows[i] = KV{K: int64(i), V: 100}
	}
	if err := s.Load(rows); err != nil {
		t.Fatalf("%s: Load: %v", s.Name(), err)
	}
}

// TestSchemesBasicReadWrite drives a serial insert/update/delete batch on
// every scheme and checks readers before, during (where allowed), and after
// see the correct committed states.
func TestSchemesBasicReadWrite(t *testing.T) {
	for _, s := range allSchemes(t) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			load(t, s, 10) // keys 0..9, each 100
			r0, err := s.BeginReader()
			if err != nil {
				t.Fatal(err)
			}
			if sum, count, err := r0.ScanSum(); err != nil || sum != 1000 || count != 10 {
				t.Fatalf("initial scan: %d/%d %v", sum, count, err)
			}
			if v, ok, err := r0.Get(3); err != nil || !ok || v != 100 {
				t.Fatalf("initial get: %d %v %v", v, ok, err)
			}
			if _, ok, _ := r0.Get(99); ok {
				t.Fatal("get of missing key succeeded")
			}
			if err := r0.Close(); err != nil {
				t.Fatal(err)
			}

			w, err := s.BeginWriter()
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.BeginWriter(); err == nil {
				t.Fatal("second concurrent writer accepted")
			}
			if err := w.Update(3, 250); err != nil {
				t.Fatal(err)
			}
			if err := w.Delete(7); err != nil {
				t.Fatal(err)
			}
			if err := w.Insert(20, 50); err != nil {
				t.Fatal(err)
			}

			// A reader that starts during maintenance sees the old state
			// (schemes that allow it at all).
			if s.Name() != "Offline" && s.Name() != "S2PL" {
				rMid, err := s.BeginReader()
				if err != nil {
					t.Fatalf("reader during maintenance: %v", err)
				}
				if sum, count, err := rMid.ScanSum(); err != nil || sum != 1000 || count != 10 {
					t.Errorf("mid-maintenance scan = %d/%d %v, want pre-batch 1000/10", sum, count, err)
				}
				if v, ok, err := rMid.Get(3); err != nil || !ok || v != 100 {
					t.Errorf("mid-maintenance get(3) = %d %v %v, want 100", v, ok, err)
				}
				if v, ok, err := rMid.Get(7); err != nil || !ok || v != 100 {
					t.Errorf("mid-maintenance get(7) = %d %v %v, want still visible", v, ok, err)
				}
				if _, ok, _ := rMid.Get(20); ok {
					t.Error("mid-maintenance reader saw uncommitted insert")
				}
				rMid.Close()
			} else if s.Name() == "Offline" {
				if _, err := s.BeginReader(); !errors.Is(err, ErrReaderBlocked) {
					t.Errorf("offline reader during maintenance: %v, want ErrReaderBlocked", err)
				}
			}

			if err := w.Commit(); err != nil {
				t.Fatalf("commit: %v", err)
			}
			r1, err := s.BeginReader()
			if err != nil {
				t.Fatal(err)
			}
			// 1000 - 100(del 7) + 150(upd 3) + 50(ins 20) = 1100, 10 tuples.
			if sum, count, err := r1.ScanSum(); err != nil || sum != 1100 || count != 10 {
				t.Errorf("post-commit scan = %d/%d %v, want 1100/10", sum, count, err)
			}
			if _, ok, _ := r1.Get(7); ok {
				t.Error("deleted key visible after commit")
			}
			if v, ok, _ := r1.Get(20); !ok || v != 50 {
				t.Errorf("inserted key = %d %v", v, ok)
			}
			r1.Close()

			if st := s.Stats(); st.StorageBytes <= 0 {
				t.Errorf("StorageBytes = %d", st.StorageBytes)
			}
		})
	}
}

// TestWriterAbortRestoresState aborts a batch on every scheme and checks
// readers see the pre-batch state.
func TestWriterAbortRestoresState(t *testing.T) {
	for _, s := range allSchemes(t) {
		s := s
		if s.Name() == "S2PL" || s.Name() == "Offline" {
			// These schemes have no before-images; their Abort contract
			// only covers clean writers (documented).
			continue
		}
		t.Run(s.Name(), func(t *testing.T) {
			load(t, s, 5)
			w, err := s.BeginWriter()
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Update(1, 999); err != nil {
				t.Fatal(err)
			}
			if err := w.Delete(2); err != nil {
				t.Fatal(err)
			}
			if err := w.Insert(50, 1); err != nil {
				t.Fatal(err)
			}
			if err := w.Abort(); err != nil {
				t.Fatal(err)
			}
			r, err := s.BeginReader()
			if err != nil {
				t.Fatal(err)
			}
			sum, count, err := r.ScanSum()
			if err != nil || sum != 500 || count != 5 {
				t.Errorf("after abort: %d/%d %v, want 500/5", sum, count, err)
			}
			if v, ok, _ := r.Get(1); !ok || v != 100 {
				t.Errorf("aborted update visible: %d %v", v, ok)
			}
			if _, ok, _ := r.Get(50); ok {
				t.Error("aborted insert visible")
			}
			r.Close()
			// The scheme accepts a new writer afterwards.
			w2, err := s.BeginWriter()
			if err != nil {
				t.Fatal(err)
			}
			if err := w2.Update(1, 101); err != nil {
				t.Fatal(err)
			}
			if err := w2.Commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// Test2V2PLCertifyWaitsForReaders demonstrates §6's 2V2PL drawback: commit
// stalls until readers of modified tuples finish, while 2VNL commits
// immediately under an identical interleaving.
func Test2V2PLCertifyWaitsForReaders(t *testing.T) {
	measure := func(s Scheme) time.Duration {
		load(t, s, 4)
		r, err := s.BeginReader()
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := r.ScanSum(); err != nil { // reader touches every tuple
			t.Fatal(err)
		}
		w, err := s.BeginWriter()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Update(1, 7); err != nil {
			t.Fatal(err)
		}
		done := make(chan time.Duration, 1)
		start := time.Now()
		go func() {
			if err := w.Commit(); err != nil {
				t.Errorf("commit: %v", err)
			}
			done <- time.Since(start)
		}()
		// Hold the reader open briefly, then release it.
		const hold = 150 * time.Millisecond
		time.Sleep(hold)
		r.Close()
		return <-done
	}
	v2, _ := NewTwoV2PL(Config{})
	if d := measure(v2); d < 100*time.Millisecond {
		t.Errorf("2V2PL commit returned in %v; it must wait for the reader (~150ms)", d)
	}
	vnl, _ := NewVNL(Config{}, 2)
	if d := measure(vnl); d > 50*time.Millisecond {
		t.Errorf("2VNL commit took %v; it must not wait for readers", d)
	}
}

// TestMV2PLChainCosts verifies the CFL-style extra I/O accounting: writes
// copy versions to the pool and old readers pay chain reads, while the
// BC92 cache absorbs recent-version reads.
func TestMV2PLChainCosts(t *testing.T) {
	plain, _ := NewMV2PL(Config{})
	cached, _ := NewMV2PL(Config{CacheSlots: 2})
	for _, s := range []*MV2PL{plain, cached} {
		load(t, s, 4)
		r, err := s.BeginReader() // ts = 1
		if err != nil {
			t.Fatal(err)
		}
		w, _ := s.BeginWriter()
		for k := int64(0); k < 4; k++ {
			if err := w.Update(k, 200); err != nil {
				t.Fatal(err)
			}
		}
		w.Commit()
		// The old reader must reconstruct version 1 of all four tuples.
		sum, count, err := r.ScanSum()
		if err != nil || sum != 400 || count != 4 {
			t.Fatalf("%s: old reader = %d/%d %v", s.Name(), sum, count, err)
		}
		r.Close()
		st := s.Stats()
		if s.cache > 0 {
			if st.CacheHits != 4 || st.ChainReads != 0 || st.PoolWrites != 0 {
				t.Errorf("cached: hits=%d chains=%d poolwrites=%d, want 4/0/0", st.CacheHits, st.ChainReads, st.PoolWrites)
			}
		} else {
			if st.PoolWrites != 4 || st.ChainReads != 4 {
				t.Errorf("plain: poolwrites=%d chains=%d, want 4/4", st.PoolWrites, st.ChainReads)
			}
			if st.PoolBytes == 0 {
				t.Error("plain: pool storage unaccounted")
			}
		}
	}
}

// TestMV2PLCacheSpill exceeds the BC92 cache so versions spill to the pool.
func TestMV2PLCacheSpill(t *testing.T) {
	s, _ := NewMV2PL(Config{CacheSlots: 1})
	load(t, s, 1)
	r1, _ := s.BeginReader() // ts=1, value 100
	for i := 0; i < 2; i++ {
		w, _ := s.BeginWriter()
		if err := w.Update(0, int64(200+i)); err != nil {
			t.Fatal(err)
		}
		w.Commit()
	}
	// Version history: 100 (vn1), 200 (vn2, cached), 201 (vn3, current).
	// 100 spilled to the pool.
	if st := s.Stats(); st.PoolWrites != 1 {
		t.Fatalf("spills = %d, want 1", st.PoolWrites)
	}
	if v, ok, err := r1.Get(0); err != nil || !ok || v != 100 {
		t.Errorf("ts=1 read = %d %v %v, want 100 via pool", v, ok, err)
	}
	r1.Close()
	r2, _ := s.BeginReader()
	if v, ok, _ := r2.Get(0); !ok || v != 201 {
		t.Errorf("current read = %d %v", v, ok)
	}
	r2.Close()
	if st := s.Stats(); st.ChainReads == 0 {
		t.Error("pool chain read not counted")
	}
}

// TestMV2PLGC reclaims unreachable pool records once readers advance.
func TestMV2PLGC(t *testing.T) {
	s, _ := NewMV2PL(Config{})
	load(t, s, 2)
	// Batch at vn=2, then take a reader at ts=2, then two more batches.
	w, _ := s.BeginWriter()
	w.Update(0, 0)
	w.Update(1, 0)
	w.Commit()
	old, _ := s.BeginReader() // ts = 2
	for i := 1; i < 3; i++ {
		w, _ := s.BeginWriter()
		w.Update(0, int64(i))
		w.Update(1, int64(i))
		w.Commit()
	}
	if st := s.Stats(); st.PoolWrites != 6 {
		t.Fatalf("pool writes = %d", st.PoolWrites)
	}
	// GC with the ts=2 reader active: only records older than version 2
	// (the initial v=100 versions) are reclaimable.
	if n := s.GC(); n != 2 {
		t.Errorf("GC with active ts=2 reader reclaimed %d, want 2", n)
	}
	if v, ok, err := old.Get(0); err != nil || !ok || v != 0 {
		t.Fatalf("reader after GC: %d %v %v, want version-2 value 0", v, ok, err)
	}
	old.Close()
	reclaimed := s.GC()
	if reclaimed == 0 {
		t.Error("GC reclaimed nothing with no readers")
	}
	// Current state still correct.
	r, _ := s.BeginReader()
	if sum, count, err := r.ScanSum(); err != nil || sum != 4 || count != 2 {
		t.Errorf("post-GC scan: %d/%d %v", sum, count, err)
	}
	r.Close()
}

// TestS2PLBlocking verifies both directions of §1's blocking complaint:
// the writer waits for readers, and readers wait for the writer.
func TestS2PLBlocking(t *testing.T) {
	s, _ := NewS2PL(Config{})
	load(t, s, 2)
	r, _ := s.BeginReader()
	if _, _, err := r.ScanSum(); err != nil {
		t.Fatal(err)
	}
	w, _ := s.BeginWriter()
	wrote := make(chan error, 1)
	go func() { wrote <- w.Update(0, 1) }()
	select {
	case err := <-wrote:
		t.Fatalf("S2PL writer proceeded under an active reader: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	r.Close()
	if err := <-wrote; err != nil {
		t.Fatal(err)
	}
	// Now a reader blocks behind the writer.
	r2, _ := s.BeginReader()
	read := make(chan error, 1)
	go func() {
		_, _, err := r2.ScanSum()
		read <- err
	}()
	select {
	case err := <-read:
		t.Fatalf("S2PL reader proceeded under an active writer: %v", err)
	case <-time.After(50 * time.Millisecond):
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := <-read; err != nil {
		t.Fatal(err)
	}
	r2.Close()
	if st := s.Stats(); st.Locks.Waited < 2 {
		t.Errorf("lock waits = %d, want >= 2", st.Locks.Waited)
	}
}

// TestSchemesAgreeUnderRandomBatches runs an identical random batch history
// on every scheme and checks they converge to identical final states — a
// differential test of all five implementations against each other.
func TestSchemesAgreeUnderRandomBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type op struct {
		kind int // 0 insert, 1 update, 2 delete
		k, v int64
	}
	// Generate a valid history against a model.
	model := map[int64]int64{}
	var batches [][]op
	next := int64(100)
	for b := 0; b < 6; b++ {
		var batch []op
		for i := 0; i < 15; i++ {
			switch rng.Intn(3) {
			case 0:
				k := next
				next++
				v := rng.Int63n(1000)
				batch = append(batch, op{0, k, v})
				model[k] = v
			case 1:
				for k, v := range model {
					_ = v
					nv := rng.Int63n(1000)
					batch = append(batch, op{1, k, nv})
					model[k] = nv
					break
				}
			case 2:
				for k := range model {
					batch = append(batch, op{2, k, 0})
					delete(model, k)
					break
				}
			}
		}
		batches = append(batches, batch)
	}
	var wantSum int64
	for _, v := range model {
		wantSum += v
	}

	for _, s := range allSchemes(t) {
		s := s
		t.Run(s.Name(), func(t *testing.T) {
			load(t, s, 0)
			// Seed inserts happen via the first batch only; load nothing.
			for _, batch := range batches {
				w, err := s.BeginWriter()
				if err != nil {
					t.Fatal(err)
				}
				for _, o := range batch {
					var err error
					switch o.kind {
					case 0:
						err = w.Insert(o.k, o.v)
					case 1:
						err = w.Update(o.k, o.v)
					case 2:
						err = w.Delete(o.k)
					}
					if err != nil {
						t.Fatalf("op %+v: %v", o, err)
					}
				}
				if err := w.Commit(); err != nil {
					t.Fatal(err)
				}
			}
			r, err := s.BeginReader()
			if err != nil {
				t.Fatal(err)
			}
			sum, count, err := r.ScanSum()
			if err != nil {
				t.Fatal(err)
			}
			if sum != wantSum || count != len(model) {
				t.Errorf("final state %d/%d, want %d/%d", sum, count, wantSum, len(model))
			}
			for k, v := range model {
				got, ok, err := r.Get(k)
				if err != nil || !ok || got != v {
					t.Errorf("key %d = %d %v %v, want %d", k, got, ok, err, v)
				}
			}
			r.Close()
		})
	}
}

// TestVNLReaderExpiresAcrossBatches checks the adapter surfaces expiration.
func TestVNLReaderExpiresAcrossBatches(t *testing.T) {
	s, _ := NewVNL(Config{}, 2)
	load(t, s, 2)
	r, _ := s.BeginReader()
	for i := 0; i < 2; i++ {
		w, err := s.BeginWriter()
		if err != nil {
			t.Fatal(err)
		}
		w.Update(0, int64(i))
		w.Commit()
	}
	// Two batches begun since the reader's snapshot: expired.
	if _, _, err := r.ScanSum(); !errors.Is(err, ErrExpired) {
		t.Errorf("ScanSum = %v, want ErrExpired", err)
	}
	r.Close()
}

// TestConcurrentReadersAllNonBlockingSchemes hammers 2VNL and MV2PL with
// parallel readers during writer batches, checking every observed sum is a
// committed state (either the old or the new batch boundary).
func TestConcurrentReadersAllNonBlockingSchemes(t *testing.T) {
	mk := []func() Scheme{
		func() Scheme { s, _ := NewMV2PL(Config{}); return s },
		func() Scheme { s, _ := NewMV2PL(Config{CacheSlots: 2}); return s },
		func() Scheme { s, _ := NewVNL(Config{}, 3); return s },
	}
	for _, f := range mk {
		s := f()
		t.Run(s.Name(), func(t *testing.T) {
			const n = 16
			load(t, s, n) // sum = 1600
			valid := map[int64]bool{16 * 100: true}
			var validMu sync.RWMutex
			stop := make(chan struct{})
			var writer sync.WaitGroup
			writer.Add(1)
			go func() {
				defer writer.Done()
				for round := 1; ; round++ {
					select {
					case <-stop:
						return
					default:
					}
					w, err := s.BeginWriter()
					if err != nil {
						t.Error(err)
						return
					}
					// Shift every tuple to a new per-round value; the sum
					// of a committed state is n*100 + round*n.
					for k := int64(0); k < n; k++ {
						if err := w.Update(k, 100+int64(round)); err != nil {
							t.Error(err)
							return
						}
					}
					validMu.Lock()
					valid[int64(n)*(100+int64(round))] = true
					validMu.Unlock()
					if err := w.Commit(); err != nil {
						t.Error(err)
						return
					}
				}
			}()
			var readers sync.WaitGroup
			for g := 0; g < 4; g++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for i := 0; i < 200; i++ {
						r, err := s.BeginReader()
						if err != nil {
							t.Error(err)
							return
						}
						sum, count, err := r.ScanSum()
						r.Close()
						if errors.Is(err, ErrExpired) {
							continue
						}
						if err != nil {
							t.Error(err)
							return
						}
						if count != n {
							t.Errorf("count = %d", count)
							return
						}
						validMu.RLock()
						ok := valid[sum]
						validMu.RUnlock()
						if !ok {
							t.Errorf("reader observed non-committed sum %d", sum)
							return
						}
					}
				}()
			}
			readers.Wait()
			close(stop)
			writer.Wait()
		})
	}
}
