package mvcc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/storage"
	"repro/internal/txn"
)

// kvSchema is the benchmark relation: k (key), v (updatable).
func kvSchema() *catalog.Schema {
	return catalog.MustSchema("acct", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
	}, "k")
}

func kvKey(k int64) catalog.Tuple { return catalog.Tuple{catalog.NewInt(k)} }

// S2PL is conventional strict two-phase locking at table granularity:
// readers share the relation, the maintenance transaction excludes them
// entirely. This is the "conventional locking" the paper's introduction
// rules out — both sides block, and since warehouse readers and maintenance
// both touch large portions of the relation, coarse granularity captures
// the effective behaviour (finer locks only delay the inevitable conflict).
type S2PL struct {
	d   *db.Database
	tbl *db.Table
	mgr *txn.Manager

	mu     sync.Mutex
	writer bool
}

// NewS2PL builds the scheme with its own engine instance.
func NewS2PL(cfg Config) (*S2PL, error) {
	d := db.Open(db.Options{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages})
	tbl, err := d.CreateTable(kvSchema())
	if err != nil {
		return nil, err
	}
	s := &S2PL{d: d, tbl: tbl, mgr: txn.NewManager()}
	instrument(d, s.mgr, s.Name())
	return s, nil
}

// Name implements Scheme.
func (s *S2PL) Name() string { return "S2PL" }

// Load implements Scheme.
func (s *S2PL) Load(rows []KV) error {
	for _, r := range rows {
		if _, err := s.tbl.Insert(catalog.Tuple{catalog.NewInt(r.K), catalog.NewInt(r.V)}); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Scheme.
func (s *S2PL) Stats() Stats {
	return Stats{
		IO:           s.d.Pool().Stats(),
		Locks:        s.mgr.Stats(),
		StorageBytes: s.tbl.Heap().Bytes(),
		LiveBytes:    s.tbl.Len() * s.tbl.Heap().RowBytes(),
	}
}

// GC implements Scheme (no version storage).
func (s *S2PL) GC() int { return 0 }

type s2plReader struct {
	s  *S2PL
	tx *txn.Txn
}

// BeginReader implements Scheme. The read lock is taken lazily on first
// access and held until Close (strict 2PL).
func (s *S2PL) BeginReader() (Reader, error) {
	return &s2plReader{s: s, tx: s.mgr.Begin(txn.Serializable)}, nil
}

func (r *s2plReader) lock() error {
	_, err := r.tx.AcquireRead(txn.TableResource("acct"))
	if errors.Is(err, txn.ErrDeadlock) {
		r.tx.Abort()
		return fmt.Errorf("%w: %v", ErrAborted, err)
	}
	return err
}

func (r *s2plReader) Get(k int64) (int64, bool, error) {
	if err := r.lock(); err != nil {
		return 0, false, err
	}
	rid, ok := r.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return 0, false, nil
	}
	t, err := r.s.tbl.Get(rid)
	if err != nil {
		return 0, false, nil
	}
	return t[1].Int(), true, nil
}

func (r *s2plReader) ScanSum() (int64, int, error) {
	if err := r.lock(); err != nil {
		return 0, 0, err
	}
	var sum int64
	count := 0
	r.s.tbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		sum += t[1].Int()
		count++
		return true
	})
	return sum, count, nil
}

func (r *s2plReader) Close() error { return r.tx.Commit() }

type s2plWriter struct {
	s      *S2PL
	tx     *txn.Txn
	locked bool
}

// BeginWriter implements Scheme.
func (s *S2PL) BeginWriter() (Writer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writer {
		return nil, errors.New("mvcc: S2PL writer already active")
	}
	s.writer = true
	return &s2plWriter{s: s, tx: s.mgr.Begin(txn.Serializable)}, nil
}

func (w *s2plWriter) lock() error {
	if w.locked {
		return nil
	}
	// The X lock blocks until every reader commits — and blocks every new
	// reader until the maintenance transaction commits.
	if err := w.tx.AcquireWrite(txn.TableResource("acct")); err != nil {
		if errors.Is(err, txn.ErrDeadlock) {
			w.tx.Abort()
			return fmt.Errorf("%w: %v", ErrAborted, err)
		}
		return err
	}
	w.locked = true
	return nil
}

func (w *s2plWriter) Insert(k, v int64) error {
	if err := w.lock(); err != nil {
		return err
	}
	_, err := w.s.tbl.Insert(catalog.Tuple{catalog.NewInt(k), catalog.NewInt(v)})
	return err
}

func (w *s2plWriter) Update(k, v int64) error {
	if err := w.lock(); err != nil {
		return err
	}
	rid, ok := w.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return fmt.Errorf("mvcc: update of missing key %d", k)
	}
	return w.s.tbl.Update(rid, catalog.Tuple{catalog.NewInt(k), catalog.NewInt(v)})
}

func (w *s2plWriter) Delete(k int64) error {
	if err := w.lock(); err != nil {
		return err
	}
	rid, ok := w.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return fmt.Errorf("mvcc: delete of missing key %d", k)
	}
	return w.s.tbl.Delete(rid)
}

func (w *s2plWriter) finish() {
	w.s.mu.Lock()
	w.s.writer = false
	w.s.mu.Unlock()
}

func (w *s2plWriter) Commit() error {
	defer w.finish()
	return w.tx.Commit()
}

func (w *s2plWriter) Abort() error {
	// Note: S2PL would normally undo from a log; the experiments only
	// abort writers that have made no changes, so Abort here just releases
	// locks.
	defer w.finish()
	w.tx.Abort()
	return nil
}
