// Package mvcc implements the concurrency-control schemes the 2VNL paper
// compares against in §6 — strict two-phase locking, two-version 2PL
// [BHR80, SR81], and multi-version 2PL with a version pool [CFL+82],
// including the per-page version-cache refinement of [BC92b] — plus the
// "nightly batch" offline discipline of §1.1 and an adapter presenting the
// 2VNL store itself. All schemes run over the same storage engine and
// expose one uniform interface, so the experiments can measure, per scheme:
// reader/writer blocking, extra I/O per read and write, and storage
// overhead.
//
// The data model is the paper's summary-table essence reduced to its
// minimum: a keyed relation (k → v) where k is the group-by key and v the
// updatable aggregate.
package mvcc

import (
	"errors"

	"repro/internal/storage"
	"repro/internal/txn"
)

// KV is one logical tuple of the benchmark relation.
type KV struct {
	K, V int64
}

// Config sizes a scheme's private engine instance.
type Config struct {
	// PageSize in bytes (0 = storage.DefaultPageSize).
	PageSize int
	// PoolPages is the buffer-pool capacity (0 = 1024).
	PoolPages int
	// CacheSlots is, for the BC92-style MV2PL variant, the number of
	// previous versions kept on the tuple's own page before spilling to
	// the global version pool. 0 selects the plain CFL+82 pool.
	CacheSlots int
}

// Errors shared by the schemes.
var (
	// ErrReaderBlocked is returned by schemes that refuse reads during
	// maintenance (the offline scheme) — the unavailability the paper's
	// Figure 1 depicts.
	ErrReaderBlocked = errors.New("mvcc: warehouse unavailable to readers during maintenance")
	// ErrExpired is returned by the 2VNL adapter when a reader outlived
	// its reconstructible versions.
	ErrExpired = errors.New("mvcc: reader snapshot expired")
	// ErrAborted is returned when a transaction must abort (deadlock
	// victim).
	ErrAborted = errors.New("mvcc: transaction aborted")
)

// Reader is a read-only transaction (the paper's reader session).
type Reader interface {
	// Get returns the value of key k in the reader's consistent view.
	Get(k int64) (v int64, ok bool, err error)
	// ScanSum scans the whole relation in the reader's view, returning the
	// sum of v and the tuple count — the roll-up query of Example 2.1.
	ScanSum() (sum int64, count int, err error)
	// Close ends the reader, releasing any read locks.
	Close() error
}

// Writer is the single maintenance transaction.
type Writer interface {
	Insert(k, v int64) error
	Update(k, v int64) error
	Delete(k int64) error
	// Commit publishes the batch. For 2V2PL this includes the certify
	// waits the paper attributes to that scheme.
	Commit() error
	Abort() error
}

// Stats is a point-in-time snapshot of a scheme's cost counters.
type Stats struct {
	// IO is the scheme's engine buffer-pool activity.
	IO storage.IOStats
	// Locks is lock-manager activity (zero for lock-free schemes).
	Locks txn.Stats
	// StorageBytes is the total allocated table + version storage
	// (pages are not returned to the OS, so this never shrinks).
	StorageBytes int
	// LiveBytes counts bytes held by live records only; garbage
	// collection shrinks it.
	LiveBytes int
	// PoolBytes is the version-pool portion of StorageBytes (MV2PL only).
	PoolBytes int
	// ChainReads counts version-pool records visited by readers (the
	// extra read I/O source in CFL+82).
	ChainReads int64
	// PoolWrites counts copy-outs of previous versions to the pool (the
	// extra write I/O source).
	PoolWrites int64
	// CacheHits counts previous-version reads served by the BC92 in-page
	// cache (no pool I/O).
	CacheHits int64
}

// Scheme is one concurrency-control discipline under test.
type Scheme interface {
	// Name identifies the scheme in experiment output.
	Name() string
	// Load bulk-loads the relation before the experiment (no versioning,
	// no locking — the warehouse's initial state).
	Load(rows []KV) error
	// BeginReader starts a reader transaction.
	BeginReader() (Reader, error)
	// BeginWriter starts the maintenance transaction. Schemes enforce one
	// writer at a time.
	BeginWriter() (Writer, error)
	// Stats snapshots the cost counters.
	Stats() Stats
	// GC reclaims versions no active reader needs; returns records
	// reclaimed. No-op for schemes without version storage.
	GC() int
}
