package mvcc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/storage"
	"repro/internal/txn"
)

// pendingOp is the pending_op column's domain: the uncommitted operation a
// writer has staged on a tuple. A named type so vnlvet's tableexhaustive
// analyzer checks switches over it.
type pendingOp string

const (
	pendingInsert pendingOp = "i"
	pendingUpdate pendingOp = "u"
	pendingDelete pendingOp = "d"
)

// twoVSchema stores both 2V2PL versions in one tuple: the committed value
// and the writer's pending (uncommitted) state.
//
//	k          key
//	v          committed value (NULL when the tuple is a pending insert)
//	pending_v  writer's new value (NULL when no pending write)
//	pending_op ""/i/u/d (see pendingOp)
func twoVSchema() *catalog.Schema {
	return catalog.MustSchema("acct", []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
		{Name: "pending_v", Type: catalog.TypeInt, Length: 8, Updatable: true},
		{Name: "pending_op", Type: catalog.TypeString, Length: 1, Updatable: true},
	}, "k")
}

// TwoV2PL implements two-version two-phase locking [BHR80, SR81]: the
// writer builds a second (pending) version of each tuple it touches under W
// locks that are compatible with readers' S locks, so writing never blocks
// reading. At commit, every W lock is upgraded to a Certify lock, which is
// incompatible with S — the writer must wait for all readers of its
// modified tuples to finish. That commit delay is precisely the 2V2PL
// drawback §6 contrasts with 2VNL, which deletes nothing at commit and so
// never waits.
type TwoV2PL struct {
	d   *db.Database
	tbl *db.Table
	mgr *txn.Manager

	mu     sync.Mutex
	writer bool
}

// NewTwoV2PL builds the scheme with its own engine instance.
func NewTwoV2PL(cfg Config) (*TwoV2PL, error) {
	d := db.Open(db.Options{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages})
	tbl, err := d.CreateTable(twoVSchema())
	if err != nil {
		return nil, err
	}
	s := &TwoV2PL{d: d, tbl: tbl, mgr: txn.NewManager()}
	instrument(d, s.mgr, s.Name())
	return s, nil
}

// Name implements Scheme.
func (s *TwoV2PL) Name() string { return "2V2PL" }

// Load implements Scheme.
func (s *TwoV2PL) Load(rows []KV) error {
	for _, r := range rows {
		_, err := s.tbl.Insert(catalog.Tuple{
			catalog.NewInt(r.K), catalog.NewInt(r.V), catalog.Null, catalog.Null,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Scheme.
func (s *TwoV2PL) Stats() Stats {
	return Stats{
		IO:           s.d.Pool().Stats(),
		Locks:        s.mgr.Stats(),
		StorageBytes: s.tbl.Heap().Bytes(),
		LiveBytes:    s.tbl.Len() * s.tbl.Heap().RowBytes(),
	}
}

// GC implements Scheme: pending state is cleaned at commit, nothing to do.
func (s *TwoV2PL) GC() int { return 0 }

type twoVReader struct {
	s  *TwoV2PL
	tx *txn.Txn
}

// BeginReader implements Scheme. Readers take S locks per tuple, held to
// Close (repeatable reads); they never block behind the writer's W locks.
func (s *TwoV2PL) BeginReader() (Reader, error) {
	return &twoVReader{s: s, tx: s.mgr.Begin(txn.Serializable)}, nil
}

func (r *twoVReader) readCommitted(rid storage.RID) (int64, bool, error) {
	if _, err := r.tx.AcquireRead(txn.TupleResource("acct", rid)); err != nil {
		if errors.Is(err, txn.ErrDeadlock) {
			r.tx.Abort()
			return 0, false, fmt.Errorf("%w: %v", ErrAborted, err)
		}
		return 0, false, err
	}
	t, err := r.s.tbl.Get(rid)
	if err != nil {
		return 0, false, nil
	}
	if t[1].IsNull() {
		return 0, false, nil // pending insert: no committed version yet
	}
	return t[1].Int(), true, nil
}

func (r *twoVReader) Get(k int64) (int64, bool, error) {
	rid, ok := r.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return 0, false, nil
	}
	return r.readCommitted(rid)
}

func (r *twoVReader) ScanSum() (int64, int, error) {
	var rids []storage.RID
	r.s.tbl.Scan(func(rid storage.RID, _ catalog.Tuple) bool {
		rids = append(rids, rid)
		return true
	})
	var sum int64
	count := 0
	for _, rid := range rids {
		v, ok, err := r.readCommitted(rid)
		if err != nil {
			return 0, 0, err
		}
		if ok {
			sum += v
			count++
		}
	}
	return sum, count, nil
}

func (r *twoVReader) Close() error { return r.tx.Commit() }

type twoVWriter struct {
	s       *TwoV2PL
	tx      *txn.Txn
	written []storage.RID
}

// BeginWriter implements Scheme.
func (s *TwoV2PL) BeginWriter() (Writer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writer {
		return nil, errors.New("mvcc: 2V2PL writer already active")
	}
	s.writer = true
	return &twoVWriter{s: s, tx: s.mgr.Begin(txn.Serializable)}, nil
}

func (w *twoVWriter) wLock(rid storage.RID) error {
	if err := w.tx.AcquireW(txn.TupleResource("acct", rid)); err != nil {
		if errors.Is(err, txn.ErrDeadlock) {
			w.tx.Abort()
			w.finish()
			return fmt.Errorf("%w: %v", ErrAborted, err)
		}
		return err
	}
	return nil
}

func (w *twoVWriter) Insert(k, v int64) error {
	// A pending insert has no committed version; readers skip it.
	rid, err := w.s.tbl.Insert(catalog.Tuple{
		catalog.NewInt(k), catalog.Null, catalog.NewInt(v), catalog.NewString(string(pendingInsert)),
	})
	if err != nil {
		return err
	}
	if err := w.wLock(rid); err != nil {
		return err
	}
	w.written = append(w.written, rid)
	return nil
}

func (w *twoVWriter) write(k int64, op pendingOp, v catalog.Value) error {
	rid, ok := w.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return fmt.Errorf("mvcc: %s of missing key %d", op, k)
	}
	if err := w.wLock(rid); err != nil {
		return err
	}
	t, err := w.s.tbl.Get(rid)
	if err != nil {
		return err
	}
	t[2] = v
	t[3] = catalog.NewString(string(op))
	if err := w.s.tbl.Update(rid, t); err != nil {
		return err
	}
	w.written = append(w.written, rid)
	return nil
}

func (w *twoVWriter) Update(k, v int64) error { return w.write(k, pendingUpdate, catalog.NewInt(v)) }

func (w *twoVWriter) Delete(k int64) error { return w.write(k, pendingDelete, catalog.Null) }

func (w *twoVWriter) finish() {
	w.s.mu.Lock()
	w.s.writer = false
	w.s.mu.Unlock()
}

// Commit upgrades every written tuple's W lock to Certify — waiting for all
// readers that have read those tuples — then installs the pending versions
// and discards the previous ones (the version deletion that forces 2V2PL to
// wait, per §6).
func (w *twoVWriter) Commit() error {
	defer w.finish()
	for _, rid := range w.written {
		if err := w.tx.Certify(txn.TupleResource("acct", rid)); err != nil {
			if errors.Is(err, txn.ErrDeadlock) {
				w.rollbackPending()
				w.tx.Abort()
				return fmt.Errorf("%w: certify: %v", ErrAborted, err)
			}
			return err
		}
	}
	for _, rid := range w.written {
		t, err := w.s.tbl.Get(rid)
		if err != nil {
			continue
		}
		if t[3].IsNull() {
			continue // already installed (rid written more than once)
		}
		switch pendingOp(t[3].Str()) {
		case pendingDelete:
			if err := w.s.tbl.Delete(rid); err != nil {
				return err
			}
		case pendingInsert, pendingUpdate: // pending becomes committed
			t[1] = t[2]
			t[2], t[3] = catalog.Null, catalog.Null
			if err := w.s.tbl.Update(rid, t); err != nil {
				return err
			}
		default:
			return fmt.Errorf("mvcc: unknown pending op %q on %v", t[3].Str(), rid)
		}
	}
	return w.tx.Commit()
}

func (w *twoVWriter) rollbackPending() {
	for _, rid := range w.written {
		t, err := w.s.tbl.Get(rid)
		if err != nil {
			continue
		}
		if t[1].IsNull() { // pending insert: remove
			_ = w.s.tbl.Delete(rid)
			continue
		}
		t[2], t[3] = catalog.Null, catalog.Null
		_ = w.s.tbl.Update(rid, t)
	}
}

// Abort discards pending versions; readers were never exposed to them.
func (w *twoVWriter) Abort() error {
	defer w.finish()
	w.rollbackPending()
	w.tx.Abort()
	return nil
}
