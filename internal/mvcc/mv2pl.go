package mvcc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/storage"
)

// MV2PL implements multi-version concurrency control in the style of
// [CFL+82]: the main relation holds only the current version of each tuple;
// previous versions are copied out to a separate version pool, chained
// newest-to-oldest. Readers take a begin-timestamp and read the newest
// version no newer than it — walking the chain costs one pool-record read
// per hop, and every write costs one pool copy-out. Those are exactly the
// extra I/Os §6 charges MV2PL with, and exactly what 2VNL avoids by keeping
// both versions inside the tuple.
//
// With Config.CacheSlots > 0 the scheme adds the [BC92b] refinement: the
// most recent previous versions are kept in a reserved area of the tuple's
// own page (modelled as in-tuple cache slots), so readers of recent
// versions avoid pool I/O at the price of permanently reserved page space.
//
// Readers and the writer never block each other; no locks are used (writer
// mutual exclusion is enforced structurally, matching the warehouse's
// single-maintenance-transaction protocol).
type MV2PL struct {
	d     *db.Database
	tbl   *db.Table
	pool  *db.Table
	cache int

	mu        sync.Mutex
	committed int64 // newest committed version counter
	writer    bool
	readers   map[*mvReader]struct{}

	chainReads atomic.Int64
	poolWrites atomic.Int64
	cacheHits  atomic.Int64
}

// Column layout of the main relation. Cache slots follow the fixed prefix.
const (
	mvK = iota
	mvV
	mvVN
	mvDead
	mvHeadPage
	mvHeadSlot
	mvFixedCols
)

// Column layout of a version-pool record.
const (
	plV = iota
	plVN
	plDead
	plNextPage
	plNextSlot
)

func mvSchema(cacheSlots int) *catalog.Schema {
	cols := []catalog.Column{
		{Name: "k", Type: catalog.TypeInt, Length: 8},
		{Name: "v", Type: catalog.TypeInt, Length: 8, Updatable: true},
		{Name: "vn", Type: catalog.TypeInt, Length: 4, Updatable: true},
		{Name: "dead", Type: catalog.TypeBool, Length: 1, Updatable: true},
		{Name: "head_page", Type: catalog.TypeInt, Length: 4, Updatable: true},
		{Name: "head_slot", Type: catalog.TypeInt, Length: 4, Updatable: true},
	}
	for i := 0; i < cacheSlots; i++ {
		cols = append(cols,
			catalog.Column{Name: fmt.Sprintf("c%d_v", i), Type: catalog.TypeInt, Length: 8, Updatable: true},
			catalog.Column{Name: fmt.Sprintf("c%d_vn", i), Type: catalog.TypeInt, Length: 4, Updatable: true},
			catalog.Column{Name: fmt.Sprintf("c%d_dead", i), Type: catalog.TypeBool, Length: 1, Updatable: true},
		)
	}
	return catalog.MustSchema("acct", cols, "k")
}

func poolSchema() *catalog.Schema {
	return catalog.MustSchema("version_pool", []catalog.Column{
		{Name: "v", Type: catalog.TypeInt, Length: 8},
		{Name: "vn", Type: catalog.TypeInt, Length: 4},
		{Name: "dead", Type: catalog.TypeBool, Length: 1},
		{Name: "next_page", Type: catalog.TypeInt, Length: 4},
		{Name: "next_slot", Type: catalog.TypeInt, Length: 4},
	})
}

// NewMV2PL builds the scheme with its own engine instance. cfg.CacheSlots
// selects the BC92 variant.
func NewMV2PL(cfg Config) (*MV2PL, error) {
	d := db.Open(db.Options{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages})
	tbl, err := d.CreateTable(mvSchema(cfg.CacheSlots))
	if err != nil {
		return nil, err
	}
	pool, err := d.CreateTable(poolSchema())
	if err != nil {
		return nil, err
	}
	s := &MV2PL{
		d: d, tbl: tbl, pool: pool, cache: cfg.CacheSlots,
		committed: 1,
		readers:   make(map[*mvReader]struct{}),
	}
	instrument(d, nil, s.Name())
	return s, nil
}

// Name implements Scheme.
func (s *MV2PL) Name() string {
	if s.cache > 0 {
		return fmt.Sprintf("MV2PL/cache%d", s.cache)
	}
	return "MV2PL"
}

// Load implements Scheme.
func (s *MV2PL) Load(rows []KV) error {
	for _, r := range rows {
		if _, err := s.tbl.Insert(s.freshTuple(r.K, r.V, 1)); err != nil {
			return err
		}
	}
	return nil
}

func (s *MV2PL) freshTuple(k, v, vn int64) catalog.Tuple {
	t := make(catalog.Tuple, len(s.tbl.Schema().Columns))
	for i := range t {
		t[i] = catalog.Null
	}
	t[mvK] = catalog.NewInt(k)
	t[mvV] = catalog.NewInt(v)
	t[mvVN] = catalog.NewInt(vn)
	t[mvDead] = catalog.NewBool(false)
	return t
}

// Stats implements Scheme.
func (s *MV2PL) Stats() Stats {
	return Stats{
		IO:           s.d.Pool().Stats(),
		StorageBytes: s.tbl.Heap().Bytes() + s.pool.Heap().Bytes(),
		PoolBytes:    s.pool.Heap().Bytes(),
		LiveBytes: s.tbl.Len()*s.tbl.Heap().RowBytes() +
			s.pool.Len()*s.pool.Heap().RowBytes(),
		ChainReads: s.chainReads.Load(),
		PoolWrites: s.poolWrites.Load(),
		CacheHits:  s.cacheHits.Load(),
	}
}

type mvReader struct {
	s  *MV2PL
	ts int64
}

// BeginReader implements Scheme: the reader's view is the newest committed
// version at begin time. No locks are taken.
func (s *MV2PL) BeginReader() (Reader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := &mvReader{s: s, ts: s.committed}
	s.readers[r] = struct{}{}
	return r, nil
}

// resolve finds the value of a main tuple as of ts, consulting cache slots
// and then the pool chain.
func (r *mvReader) resolve(t catalog.Tuple) (int64, bool, error) {
	s := r.s
	if t[mvVN].Int() <= r.ts {
		if t[mvDead].Bool() {
			return 0, false, nil
		}
		return t[mvV].Int(), true, nil
	}
	// BC92 in-page cache: newest-first; same page as the tuple, so no
	// extra I/O.
	for i := 0; i < s.cache; i++ {
		base := mvFixedCols + 3*i
		if t[base+1].IsNull() {
			break
		}
		if vn := t[base+1].Int(); vn <= r.ts {
			s.cacheHits.Add(1)
			if t[base+2].Bool() {
				return 0, false, nil
			}
			return t[base].Int(), true, nil
		}
	}
	// Walk the global version pool chain (one record read per hop).
	pg, sl := t[mvHeadPage], t[mvHeadSlot]
	for !pg.IsNull() {
		rec, err := s.pool.Get(storage.RID{Page: int(pg.Int()), Slot: int(sl.Int())})
		if err != nil {
			return 0, false, fmt.Errorf("mvcc: broken version chain: %w", err)
		}
		s.chainReads.Add(1)
		if rec[plVN].Int() <= r.ts {
			if rec[plDead].Bool() {
				return 0, false, nil
			}
			return rec[plV].Int(), true, nil
		}
		pg, sl = rec[plNextPage], rec[plNextSlot]
	}
	// No version as old as ts: the tuple did not exist then.
	return 0, false, nil
}

func (r *mvReader) Get(k int64) (int64, bool, error) {
	rid, ok := r.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return 0, false, nil
	}
	t, err := r.s.tbl.Get(rid)
	if err != nil {
		return 0, false, nil
	}
	return r.resolve(t)
}

func (r *mvReader) ScanSum() (int64, int, error) {
	var sum int64
	count := 0
	var resolveErr error
	r.s.tbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		v, ok, err := r.resolve(t)
		if err != nil {
			resolveErr = err
			return false
		}
		if ok {
			sum += v
			count++
		}
		return true
	})
	return sum, count, resolveErr
}

func (r *mvReader) Close() error {
	r.s.mu.Lock()
	delete(r.s.readers, r)
	r.s.mu.Unlock()
	return nil
}

type mvWriter struct {
	s  *MV2PL
	vn int64
	// touched records RIDs for abort.
	touched  []storage.RID
	inserted []storage.RID
}

// BeginWriter implements Scheme.
func (s *MV2PL) BeginWriter() (Writer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.writer {
		return nil, errors.New("mvcc: MV2PL writer already active")
	}
	s.writer = true
	return &mvWriter{s: s, vn: s.committed + 1}, nil
}

// pushVersion preserves the tuple's current state before an overwrite:
// into the in-page cache when configured (spilling the oldest cached
// version to the pool), else directly to the pool. It must run before the
// main tuple is updated so concurrent readers never miss a version.
func (w *mvWriter) pushVersion(rid storage.RID, t catalog.Tuple) error {
	s := w.s
	spillV, spillVN, spillDead := t[mvV], t[mvVN], t[mvDead]
	if s.cache > 0 {
		// Shift the cache; the oldest slot (if occupied) spills.
		lastBase := mvFixedCols + 3*(s.cache-1)
		var evictedV, evictedVN, evictedDead catalog.Value = t[lastBase], t[lastBase+1], t[lastBase+2]
		for i := s.cache - 1; i > 0; i-- {
			dst, src := mvFixedCols+3*i, mvFixedCols+3*(i-1)
			t[dst], t[dst+1], t[dst+2] = t[src], t[src+1], t[src+2]
		}
		t[mvFixedCols], t[mvFixedCols+1], t[mvFixedCols+2] = spillV, spillVN, spillDead
		if evictedVN.IsNull() {
			return nil // cache had room; no pool I/O at all
		}
		spillV, spillVN, spillDead = evictedV, evictedVN, evictedDead
	}
	rec := catalog.Tuple{spillV, spillVN, spillDead, t[mvHeadPage], t[mvHeadSlot]}
	prid, err := s.pool.Insert(rec)
	if err != nil {
		return err
	}
	s.poolWrites.Add(1)
	t[mvHeadPage] = catalog.NewInt(int64(prid.Page))
	t[mvHeadSlot] = catalog.NewInt(int64(prid.Slot))
	return nil
}

func (w *mvWriter) Insert(k, v int64) error {
	rid, err := w.s.tbl.Insert(w.s.freshTuple(k, v, w.vn))
	if err != nil {
		return err
	}
	w.inserted = append(w.inserted, rid)
	return nil
}

func (w *mvWriter) write(k int64, v int64, dead bool) error {
	s := w.s
	rid, ok := s.tbl.SearchKey(kvKey(k))
	if !ok {
		return fmt.Errorf("mvcc: write of missing key %d", k)
	}
	t, err := s.tbl.Get(rid)
	if err != nil {
		return err
	}
	if t[mvVN].Int() < w.vn {
		if err := w.pushVersion(rid, t); err != nil {
			return err
		}
		w.touched = append(w.touched, rid)
	}
	t[mvV] = catalog.NewInt(v)
	t[mvVN] = catalog.NewInt(w.vn)
	t[mvDead] = catalog.NewBool(dead)
	return s.tbl.Update(rid, t)
}

func (w *mvWriter) Update(k, v int64) error { return w.write(k, v, false) }

// Delete writes a tombstone version; the tuple stays for older readers and
// is reclaimed by GC.
func (w *mvWriter) Delete(k int64) error { return w.write(k, 0, true) }

func (w *mvWriter) finish() {
	w.s.mu.Lock()
	w.s.writer = false
	w.s.mu.Unlock()
}

// Commit publishes the new version by bumping the committed counter.
// Nothing is deleted and nobody is waited for — but the pool copies have
// already been paid for.
func (w *mvWriter) Commit() error {
	defer w.finish()
	w.s.mu.Lock()
	w.s.committed = w.vn
	w.s.mu.Unlock()
	return nil
}

// Abort restores every touched tuple from its newest preserved version and
// removes inserted tuples.
func (w *mvWriter) Abort() error {
	defer w.finish()
	s := w.s
	for _, rid := range w.inserted {
		_ = s.tbl.Delete(rid)
	}
	for _, rid := range w.touched {
		t, err := s.tbl.Get(rid)
		if err != nil {
			continue
		}
		if s.cache > 0 && !t[mvFixedCols+1].IsNull() {
			// Pop the newest cached version back into the tuple.
			t[mvV], t[mvVN], t[mvDead] = t[mvFixedCols], t[mvFixedCols+1], t[mvFixedCols+2]
			for i := 0; i < s.cache-1; i++ {
				dst, src := mvFixedCols+3*i, mvFixedCols+3*(i+1)
				t[dst], t[dst+1], t[dst+2] = t[src], t[src+1], t[src+2]
			}
			last := mvFixedCols + 3*(s.cache-1)
			t[last], t[last+1], t[last+2] = catalog.Null, catalog.Null, catalog.Null
			_ = s.tbl.Update(rid, t)
			continue
		}
		// Pop from the pool chain.
		pg, sl := t[mvHeadPage], t[mvHeadSlot]
		if pg.IsNull() {
			continue
		}
		prid := storage.RID{Page: int(pg.Int()), Slot: int(sl.Int())}
		rec, err := s.pool.Get(prid)
		if err != nil {
			continue
		}
		t[mvV], t[mvVN], t[mvDead] = rec[plV], rec[plVN], rec[plDead]
		t[mvHeadPage], t[mvHeadSlot] = rec[plNextPage], rec[plNextSlot]
		_ = s.tbl.Update(rid, t)
		_ = s.pool.Delete(prid)
	}
	return nil
}

// GC implements Scheme: reclaims pool records (and dead main tuples) that
// no active reader can reach, per the oldest active begin-timestamp.
func (s *MV2PL) GC() int {
	s.mu.Lock()
	floor := s.committed
	for r := range s.readers {
		if r.ts < floor {
			floor = r.ts
		}
	}
	writerActive := s.writer
	s.mu.Unlock()
	if writerActive {
		return 0
	}
	reclaimed := 0
	type mainFix struct {
		rid  storage.RID
		drop bool
	}
	var fixes []mainFix
	var poolVictims []storage.RID
	s.tbl.Scan(func(rid storage.RID, t catalog.Tuple) bool {
		// Walk the chain; once a version with vn <= floor is found, every
		// older record is unreachable.
		found := t[mvVN].Int() <= floor
		// Cached versions are reclaimed implicitly (slots reused); only
		// chase the pool chain.
		if s.cache > 0 {
			for i := 0; i < s.cache && !found; i++ {
				base := mvFixedCols + 3*i
				if t[base+1].IsNull() {
					break
				}
				found = t[base+1].Int() <= floor
			}
		}
		pg, sl := t[mvHeadPage], t[mvHeadSlot]
		truncated := false
		for !pg.IsNull() {
			prid := storage.RID{Page: int(pg.Int()), Slot: int(sl.Int())}
			rec, err := s.pool.Get(prid)
			if err != nil {
				break
			}
			if found {
				poolVictims = append(poolVictims, prid)
				if !truncated {
					truncated = true
					fixes = append(fixes, mainFix{rid: rid})
					_ = rec
				}
			}
			if rec[plVN].Int() <= floor {
				found = true
			}
			pg, sl = rec[plNextPage], rec[plNextSlot]
		}
		// A dead current version at or below the floor with no reachable
		// history can be removed outright.
		if t[mvDead].Bool() && t[mvVN].Int() <= floor {
			fixes = append(fixes, mainFix{rid: rid, drop: true})
		}
		return true
	})
	// Truncation bookkeeping: chains are cut by clearing heads where the
	// whole chain was reclaimable; partial cuts re-walk and clear the next
	// pointer of the last kept record. For experiment-scale simplicity,
	// chains are only reclaimed whole-tuple here: when the current version
	// itself satisfies every reader (vn <= floor), the entire chain is
	// unreachable.
	for _, f := range fixes {
		if f.drop {
			if err := s.tbl.Delete(f.rid); err == nil {
				reclaimed++
			}
			continue
		}
		t, err := s.tbl.Get(f.rid)
		if err != nil {
			continue
		}
		if t[mvVN].Int() <= floor {
			t[mvHeadPage], t[mvHeadSlot] = catalog.Null, catalog.Null
			_ = s.tbl.Update(f.rid, t)
		}
	}
	for _, prid := range poolVictims {
		if err := s.pool.Delete(prid); err == nil {
			reclaimed++
		}
	}
	return reclaimed
}
