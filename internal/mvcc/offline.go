package mvcc

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/catalog"
	"repro/internal/db"
	"repro/internal/storage"
)

// Offline is the current-practice discipline of §1.1 (Figure 1): the
// warehouse is simply closed to readers while the maintenance transaction
// runs ("maintain at night"). No locks, no versions — and no availability:
// BeginReader fails with ErrReaderBlocked during maintenance, and the
// availability experiment charges the whole maintenance window as
// downtime.
type Offline struct {
	d   *db.Database
	tbl *db.Table

	mu          sync.Mutex
	maintaining bool
	readers     int
}

// NewOffline builds the scheme with its own engine instance.
func NewOffline(cfg Config) (*Offline, error) {
	d := db.Open(db.Options{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages})
	tbl, err := d.CreateTable(kvSchema())
	if err != nil {
		return nil, err
	}
	s := &Offline{d: d, tbl: tbl}
	instrument(d, nil, s.Name())
	return s, nil
}

// Name implements Scheme.
func (s *Offline) Name() string { return "Offline" }

// Load implements Scheme.
func (s *Offline) Load(rows []KV) error {
	for _, r := range rows {
		if _, err := s.tbl.Insert(catalog.Tuple{catalog.NewInt(r.K), catalog.NewInt(r.V)}); err != nil {
			return err
		}
	}
	return nil
}

// Stats implements Scheme.
func (s *Offline) Stats() Stats {
	return Stats{
		IO:           s.d.Pool().Stats(),
		StorageBytes: s.tbl.Heap().Bytes(),
		LiveBytes:    s.tbl.Len() * s.tbl.Heap().RowBytes(),
	}
}

// GC implements Scheme.
func (s *Offline) GC() int { return 0 }

type offlineReader struct{ s *Offline }

// BeginReader implements Scheme; it fails while maintenance runs.
func (s *Offline) BeginReader() (Reader, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maintaining {
		return nil, ErrReaderBlocked
	}
	s.readers++
	return &offlineReader{s: s}, nil
}

func (r *offlineReader) Get(k int64) (int64, bool, error) {
	rid, ok := r.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return 0, false, nil
	}
	t, err := r.s.tbl.Get(rid)
	if err != nil {
		return 0, false, nil
	}
	return t[1].Int(), true, nil
}

func (r *offlineReader) ScanSum() (int64, int, error) {
	var sum int64
	count := 0
	r.s.tbl.Scan(func(_ storage.RID, t catalog.Tuple) bool {
		sum += t[1].Int()
		count++
		return true
	})
	return sum, count, nil
}

func (r *offlineReader) Close() error {
	r.s.mu.Lock()
	r.s.readers--
	r.s.mu.Unlock()
	return nil
}

type offlineWriter struct{ s *Offline }

// BeginWriter implements Scheme; it fails while any reader session is open
// (the "wait for the day to end" rule) and closes the warehouse to readers
// until Commit.
func (s *Offline) BeginWriter() (Writer, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maintaining {
		return nil, errors.New("mvcc: offline maintenance already active")
	}
	if s.readers > 0 {
		return nil, fmt.Errorf("mvcc: offline maintenance must wait for %d open reader sessions", s.readers)
	}
	s.maintaining = true
	return &offlineWriter{s: s}, nil
}

func (w *offlineWriter) Insert(k, v int64) error {
	_, err := w.s.tbl.Insert(catalog.Tuple{catalog.NewInt(k), catalog.NewInt(v)})
	return err
}

func (w *offlineWriter) Update(k, v int64) error {
	rid, ok := w.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return fmt.Errorf("mvcc: update of missing key %d", k)
	}
	return w.s.tbl.Update(rid, catalog.Tuple{catalog.NewInt(k), catalog.NewInt(v)})
}

func (w *offlineWriter) Delete(k int64) error {
	rid, ok := w.s.tbl.SearchKey(kvKey(k))
	if !ok {
		return fmt.Errorf("mvcc: delete of missing key %d", k)
	}
	return w.s.tbl.Delete(rid)
}

func (w *offlineWriter) Commit() error {
	w.s.mu.Lock()
	w.s.maintaining = false
	w.s.mu.Unlock()
	return nil
}

// Abort reopens the warehouse; the experiments only abort clean writers.
func (w *offlineWriter) Abort() error { return w.Commit() }
