package mvcc

import (
	"errors"
	"fmt"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/storage"
)

// VNL adapts the paper's 2VNL/nVNL store to the common Scheme interface so
// the experiments can race it against the locking and version-pool
// baselines on identical workloads.
type VNL struct {
	d     *db.Database
	store *core.Store
	n     int
}

// NewVNL builds the scheme with n simultaneously available versions (2 for
// the paper's 2VNL).
func NewVNL(cfg Config, n int) (*VNL, error) {
	d := db.Open(db.Options{PageSize: cfg.PageSize, PoolPages: cfg.PoolPages})
	s, err := core.Open(d, core.Options{N: n})
	if err != nil {
		return nil, err
	}
	if _, err := s.CreateTable(kvSchema()); err != nil {
		return nil, err
	}
	v := &VNL{d: d, store: s, n: n}
	// Re-point the pool counters from core.Open's generic "storage_pool"
	// prefix to this scheme's own series (no lock manager — that is the
	// point of 2VNL).
	instrument(d, nil, v.Name())
	return v, nil
}

// Name implements Scheme.
func (s *VNL) Name() string {
	if s.n == 2 {
		return "2VNL"
	}
	return fmt.Sprintf("%dVNL", s.n)
}

// Store exposes the underlying version store for experiment-specific
// probes.
func (s *VNL) Store() *core.Store { return s.store }

// Load implements Scheme: initial data is installed by a bulk maintenance
// transaction (the warehouse's initial load).
func (s *VNL) Load(rows []KV) error {
	m, err := s.store.BeginMaintenance()
	if err != nil {
		return err
	}
	for _, r := range rows {
		if err := m.Insert("acct", catalog.Tuple{catalog.NewInt(r.K), catalog.NewInt(r.V)}); err != nil {
			m.Rollback()
			return err
		}
	}
	return m.Commit()
}

// Stats implements Scheme. 2VNL takes no locks and does no version-pool
// I/O; its storage cost is the widened tuples themselves.
func (s *VNL) Stats() Stats {
	vt, err := s.store.Table("acct")
	if err != nil {
		return Stats{}
	}
	return Stats{
		IO:           s.d.Pool().Stats(),
		StorageBytes: vt.Storage().Heap().Bytes(),
		LiveBytes:    vt.Len() * vt.Storage().Heap().RowBytes(),
	}
}

// GC implements Scheme.
func (s *VNL) GC() int { return s.store.GC().Removed }

type vnlReader struct {
	s    *VNL
	sess *core.Session
}

// BeginReader implements Scheme.
func (s *VNL) BeginReader() (Reader, error) {
	return &vnlReader{s: s, sess: s.store.BeginSession()}, nil
}

func (r *vnlReader) Get(k int64) (int64, bool, error) {
	t, visible, err := r.sess.Get("acct", kvKey(k))
	if errors.Is(err, core.ErrSessionExpired) {
		return 0, false, ErrExpired
	}
	if err != nil || !visible {
		return 0, false, err
	}
	return t[1].Int(), true, nil
}

func (r *vnlReader) ScanSum() (int64, int, error) {
	var sum int64
	count := 0
	err := r.sess.Scan("acct", func(t catalog.Tuple) bool {
		sum += t[1].Int()
		count++
		return true
	})
	if errors.Is(err, core.ErrSessionExpired) {
		return 0, 0, ErrExpired
	}
	return sum, count, err
}

func (r *vnlReader) Close() error {
	r.sess.Close()
	return nil
}

type vnlWriter struct {
	s *VNL
	m *core.Maintenance
}

// BeginWriter implements Scheme.
func (s *VNL) BeginWriter() (Writer, error) {
	m, err := s.store.BeginMaintenance()
	if err != nil {
		return nil, err
	}
	return &vnlWriter{s: s, m: m}, nil
}

func (w *vnlWriter) Insert(k, v int64) error {
	return w.m.Insert("acct", catalog.Tuple{catalog.NewInt(k), catalog.NewInt(v)})
}

func (w *vnlWriter) Update(k, v int64) error {
	found, err := w.m.UpdateKey("acct", kvKey(k), func(c catalog.Tuple) catalog.Tuple {
		c[1] = catalog.NewInt(v)
		return c
	})
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("mvcc: update of missing key %d", k)
	}
	return nil
}

func (w *vnlWriter) Delete(k int64) error {
	found, err := w.m.DeleteKey("acct", kvKey(k))
	if err != nil {
		return err
	}
	if !found {
		return fmt.Errorf("mvcc: delete of missing key %d", k)
	}
	return nil
}

func (w *vnlWriter) Commit() error { return w.m.Commit() }

func (w *vnlWriter) Abort() error { return w.m.Rollback() }

// Interface conformance checks.
var (
	_ Scheme = (*S2PL)(nil)
	_ Scheme = (*TwoV2PL)(nil)
	_ Scheme = (*MV2PL)(nil)
	_ Scheme = (*Offline)(nil)
	_ Scheme = (*VNL)(nil)
	_        = storage.RID{}
)
