// Package txn provides the transaction substrate the warehouse baselines
// run on: a lock manager with shared, exclusive, and the two-version
// write/certify modes of 2V2PL, waits-for deadlock detection, and strict
// two-phase transaction lifecycles.
//
// The 2VNL algorithm itself places no locks — that is the paper's point —
// but its comparison targets do: strict 2PL blocks readers behind the
// maintenance transaction, and 2V2PL writers must certify (upgrade W→C) at
// commit, waiting out every reader of a modified tuple (§6). This package
// implements those mechanisms faithfully so the experiments can measure the
// blocking the paper argues 2VNL avoids.
package txn

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/storage"
)

// Mode is a lock mode.
type Mode int

// Lock modes. S and X are conventional. W and Certify implement 2V2PL
// [BHR80, SR81]: a writer takes W locks (compatible with readers' S locks,
// since the writer writes a new version) and converts them to Certify locks
// at commit; Certify conflicts with S, so commit waits for readers.
const (
	S Mode = iota + 1
	X
	W
	Certify
)

func (m Mode) String() string {
	switch m {
	case S:
		return "S"
	case X:
		return "X"
	case W:
		return "W"
	case Certify:
		return "C"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Compatible reports whether a lock in mode a held by one transaction is
// compatible with a request in mode b by another.
func Compatible(a, b Mode) bool {
	switch a {
	case S:
		return b == S || b == W
	case W:
		return b == S
	case X, Certify:
		return false
	default:
		return false
	}
}

// stronger reports whether mode a subsumes mode b for upgrade purposes.
func stronger(a, b Mode) bool {
	rank := func(m Mode) int {
		switch m {
		case S:
			return 1
		case W:
			return 2
		case X, Certify:
			return 3
		}
		return 0
	}
	return rank(a) >= rank(b)
}

// ErrDeadlock is returned by Acquire when granting the request would create
// a waits-for cycle; the requester should abort.
var ErrDeadlock = errors.New("txn: deadlock detected")

// ErrTxnDone is returned when using a committed or aborted transaction.
var ErrTxnDone = errors.New("txn: transaction already finished")

// Resource names a lockable object: a whole table or a single tuple.
type Resource struct {
	Table string
	RID   storage.RID
	// Tuple distinguishes tuple-level resources from the table-level
	// resource (which has the zero RID).
	Tuple bool
}

// TableResource returns the table-granularity resource for a table.
func TableResource(table string) Resource { return Resource{Table: table} }

// TupleResource returns the tuple-granularity resource for one record.
func TupleResource(table string, rid storage.RID) Resource {
	return Resource{Table: table, RID: rid, Tuple: true}
}

func (r Resource) String() string {
	if r.Tuple {
		return fmt.Sprintf("%s%v", r.Table, r.RID)
	}
	return r.Table
}

type lockState struct {
	holders map[ID]Mode
}

type waiter struct {
	txn  ID
	res  Resource
	mode Mode
	// seq is the arrival order of the request; a waiter only defers to
	// incompatible waiters with smaller seq, so two equal waiters can
	// never block each other.
	seq int64
}

// Manager is the lock manager. A single mutex plus condition variable
// serializes lock-table changes; blocked Acquire calls wait on the
// condition and re-examine the table FIFO-fairly on every release.
type Manager struct {
	mu    sync.Mutex
	cond  *sync.Cond
	locks map[Resource]*lockState
	// waiting records, for every blocked transaction, the resource it
	// waits on; it drives deadlock detection.
	waiting map[ID]Resource
	// queue preserves arrival order of blocked requests so that releases
	// wake waiters fairly.
	queue   []waiter
	nextSeq int64
	stats   Stats
	// Optional observability mirrors (see Instrument); nil until
	// instrumented, so uninstrumented managers pay only a nil check.
	cAcquired, cWaited, cDeadlocks *obs.Counter
	hWaitNS                        *obs.Histogram
}

// Stats counts lock-manager events; the blocking experiments report these.
type Stats struct {
	Acquired  int64
	Waited    int64 // requests that blocked at least once
	Deadlocks int64
}

// NewManager returns an empty lock manager.
func NewManager() *Manager {
	m := &Manager{
		locks:   make(map[Resource]*lockState),
		waiting: make(map[ID]Resource),
	}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// Instrument mirrors the manager's counters live into reg under
// prefix+"_locks_acquired_total" etc., and records blocked-request wait
// times in prefix+"_lock_wait_ns". Managers instrumented with the same
// prefix share the series (registry lookups are get-or-create).
func (m *Manager) Instrument(reg *obs.Registry, prefix string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cAcquired = reg.Counter(prefix+"_locks_acquired_total", "lock requests granted")
	m.cWaited = reg.Counter(prefix+"_locks_waited_total", "lock requests that blocked at least once")
	m.cDeadlocks = reg.Counter(prefix+"_deadlocks_total", "lock requests aborted by deadlock detection")
	m.hWaitNS = reg.Histogram(prefix+"_lock_wait_ns", "time blocked lock requests spent waiting", obs.DurationBuckets)
}

// grantable reports whether txn may take res in mode, given current holders
// and queued waiters. A transaction is always compatible with itself
// (upgrades). Fairness: a request must not overtake an earlier-arrived
// (smaller seq) incompatible waiter — otherwise a stream of short readers
// starves a waiting writer (or a 2V2PL certifier) forever. A fresh request
// passes seq < 0 and defers to every queued incompatible waiter.
// Transactions that already hold a lock on res are exempt from the fairness
// rule, so lock upgrades cannot deadlock against the queue.
func (m *Manager) grantable(txn ID, res Resource, mode Mode, seq int64) bool {
	st := m.locks[res]
	holdsSomething := false
	if st != nil {
		for holder, hm := range st.holders {
			if holder == txn {
				holdsSomething = true
				continue
			}
			if !Compatible(hm, mode) {
				return false
			}
		}
	}
	if !holdsSomething {
		for _, w := range m.queue {
			if w.txn == txn || w.res != res {
				continue
			}
			if seq >= 0 && w.seq >= seq {
				continue // w arrived later (or is our own re-queue)
			}
			if !Compatible(w.mode, mode) || !Compatible(mode, w.mode) {
				return false
			}
		}
	}
	return true
}

// acquire blocks until txn holds res in (at least) mode, or returns
// ErrDeadlock. It must be called without m.mu held.
func (m *Manager) acquire(txn ID, res Resource, mode Mode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	// Fast path.
	if st := m.locks[res]; st != nil {
		if held, ok := st.holders[txn]; ok && stronger(held, mode) {
			return nil
		}
	}
	seq := int64(-1) // assigned at first wait; kept across re-checks
	var waitStart time.Time
	for !m.grantable(txn, res, mode, seq) {
		if m.wouldDeadlock(txn, res, mode) {
			m.stats.Deadlocks++
			if m.cDeadlocks != nil {
				m.cDeadlocks.Inc()
			}
			return ErrDeadlock
		}
		if seq < 0 {
			m.stats.Waited++
			if m.cWaited != nil {
				m.cWaited.Inc()
				waitStart = time.Now()
			}
			seq = m.nextSeq
			m.nextSeq++
		}
		m.waiting[txn] = res
		m.queue = append(m.queue, waiter{txn, res, mode, seq})
		m.cond.Wait()
		delete(m.waiting, txn)
		m.dequeue(txn)
	}
	st := m.locks[res]
	if st == nil {
		st = &lockState{holders: make(map[ID]Mode)}
		m.locks[res] = st
	}
	if held, ok := st.holders[txn]; !ok || !stronger(held, mode) {
		st.holders[txn] = mode
	}
	m.stats.Acquired++
	if m.cAcquired != nil {
		m.cAcquired.Inc()
		if !waitStart.IsZero() {
			m.hWaitNS.ObserveSince(waitStart)
		}
	}
	return nil
}

func (m *Manager) dequeue(txn ID) {
	for i, w := range m.queue {
		if w.txn == txn {
			m.queue = append(m.queue[:i], m.queue[i+1:]...)
			return
		}
	}
}

// wouldDeadlock checks, with m.mu held, whether txn waiting on res would
// close a waits-for cycle. Edges: a waiter waits for every incompatible
// holder of its resource.
func (m *Manager) wouldDeadlock(txn ID, res Resource, mode Mode) bool {
	// blockersOf returns the transactions that keep `t` from acquiring
	// `r` in mode `md`.
	blockersOf := func(t ID, r Resource, md Mode) []ID {
		var out []ID
		if st := m.locks[r]; st != nil {
			for holder, hm := range st.holders {
				if holder != t && !Compatible(hm, md) {
					out = append(out, holder)
				}
			}
		}
		return out
	}
	// DFS from txn's prospective blockers; reaching txn again is a cycle.
	// Mode information for already-waiting transactions is approximated
	// conservatively as X (any conflict blocks them).
	visited := make(map[ID]bool)
	var dfs func(t ID) bool
	dfs = func(t ID) bool {
		if t == txn {
			return true
		}
		if visited[t] {
			return false
		}
		visited[t] = true
		wres, isWaiting := m.waiting[t]
		if !isWaiting {
			return false
		}
		for _, b := range blockersOf(t, wres, X) {
			if dfs(b) {
				return true
			}
		}
		return false
	}
	for _, b := range blockersOf(txn, res, mode) {
		if dfs(b) {
			return true
		}
	}
	return false
}

// release drops every lock txn holds and wakes all waiters.
func (m *Manager) release(txn ID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for res, st := range m.locks {
		if _, ok := st.holders[txn]; ok {
			delete(st.holders, txn)
			if len(st.holders) == 0 {
				delete(m.locks, res)
			}
		}
	}
	m.cond.Broadcast()
}

// releaseOne drops a single lock (used by short read locks under
// READ COMMITTED) and wakes waiters.
func (m *Manager) releaseOne(txn ID, res Resource) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if st := m.locks[res]; st != nil {
		delete(st.holders, txn)
		if len(st.holders) == 0 {
			delete(m.locks, res)
		}
	}
	m.cond.Broadcast()
}

// HeldModes returns the modes txn currently holds, keyed by resource. For
// tests and diagnostics.
func (m *Manager) HeldModes(txn ID) map[Resource]Mode {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[Resource]Mode)
	for res, st := range m.locks {
		if mode, ok := st.holders[txn]; ok {
			out[res] = mode
		}
	}
	return out
}
