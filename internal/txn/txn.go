package txn

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// ID identifies a transaction.
type ID int64

// IsolationLevel selects the locking discipline a transaction runs under.
type IsolationLevel int

const (
	// ReadUncommitted places no read locks and ignores write locks. This is
	// the level the 2VNL paper requires warehouse readers to run at (§4):
	// correctness comes from the version logic in the tuples, not from
	// locks.
	ReadUncommitted IsolationLevel = iota
	// ReadCommitted takes short S locks, released after each read.
	ReadCommitted
	// Serializable is strict two-phase locking: all locks held to the end.
	Serializable
)

func (l IsolationLevel) String() string {
	switch l {
	case ReadUncommitted:
		return "READ UNCOMMITTED"
	case ReadCommitted:
		return "READ COMMITTED"
	case Serializable:
		return "SERIALIZABLE"
	default:
		return fmt.Sprintf("IsolationLevel(%d)", int(l))
	}
}

// State is a transaction's lifecycle state.
type State int

const (
	Active State = iota
	Committed
	Aborted
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

var nextTxnID atomic.Int64

// Txn is a transaction handle. Lock acquisition goes through the manager;
// commit and abort release every held lock (strict 2PL) and run any
// registered hooks, which baselines use to install or discard deferred
// writes.
type Txn struct {
	id        ID
	isolation IsolationLevel
	mgr       *Manager

	mu        sync.Mutex
	state     State
	onCommit  []func()
	onAbort   []func()
	onRelease []func() // after locks drop, either way
}

// Begin starts a transaction at the given isolation level.
func (m *Manager) Begin(level IsolationLevel) *Txn {
	return &Txn{
		id:        ID(nextTxnID.Add(1)),
		isolation: level,
		mgr:       m,
	}
}

// ID returns the transaction's identifier.
func (t *Txn) ID() ID { return t.id }

// Isolation returns the transaction's isolation level.
func (t *Txn) Isolation() IsolationLevel { return t.isolation }

// State returns the lifecycle state.
func (t *Txn) State() State {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.state
}

func (t *Txn) checkActive() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != Active {
		return fmt.Errorf("%w (txn %d is %v)", ErrTxnDone, t.id, t.state)
	}
	return nil
}

// AcquireRead takes a read lock on res according to the isolation level:
// none for READ UNCOMMITTED, a short S lock for READ COMMITTED (released by
// the returned func), a held S lock for SERIALIZABLE (returned func is a
// no-op). It may return ErrDeadlock.
func (t *Txn) AcquireRead(res Resource) (release func(), err error) {
	if err := t.checkActive(); err != nil {
		return nil, err
	}
	switch t.isolation {
	case ReadUncommitted:
		return func() {}, nil
	case ReadCommitted:
		if err := t.mgr.acquire(t.id, res, S); err != nil {
			return nil, err
		}
		return func() { t.mgr.releaseOne(t.id, res) }, nil
	default:
		if err := t.mgr.acquire(t.id, res, S); err != nil {
			return nil, err
		}
		return func() {}, nil
	}
}

// AcquireWrite takes an exclusive (X) lock on res, held until commit.
func (t *Txn) AcquireWrite(res Resource) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	return t.mgr.acquire(t.id, res, X)
}

// AcquireW takes a 2V2PL write (W) lock: compatible with readers' S locks,
// incompatible with other writers.
func (t *Txn) AcquireW(res Resource) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	return t.mgr.acquire(t.id, res, W)
}

// Certify upgrades res from W to Certify, waiting for all readers to
// release their S locks. 2V2PL writers call this for every written resource
// at commit; the wait is the "readers delay writers" cost the paper's §6
// attributes to 2V2PL.
func (t *Txn) Certify(res Resource) error {
	if err := t.checkActive(); err != nil {
		return err
	}
	return t.mgr.acquire(t.id, res, Certify)
}

// OnCommit registers fn to run during Commit, before locks are released.
func (t *Txn) OnCommit(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onCommit = append(t.onCommit, fn)
}

// OnAbort registers fn to run during Abort, before locks are released.
func (t *Txn) OnAbort(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onAbort = append(t.onAbort, fn)
}

// OnRelease registers fn to run after locks are released, on either commit
// or abort.
func (t *Txn) OnRelease(fn func()) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.onRelease = append(t.onRelease, fn)
}

// Commit runs commit hooks, releases all locks, and marks the transaction
// committed.
func (t *Txn) Commit() error {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return fmt.Errorf("%w (txn %d is %v)", ErrTxnDone, t.id, t.state)
	}
	hooks := t.onCommit
	after := t.onRelease
	t.state = Committed
	t.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	t.mgr.release(t.id)
	for _, fn := range after {
		fn()
	}
	return nil
}

// Abort runs abort hooks, releases all locks, and marks the transaction
// aborted. Aborting a finished transaction is a no-op.
func (t *Txn) Abort() {
	t.mu.Lock()
	if t.state != Active {
		t.mu.Unlock()
		return
	}
	hooks := t.onAbort
	after := t.onRelease
	t.state = Aborted
	t.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	t.mgr.release(t.id)
	for _, fn := range after {
		fn()
	}
}
