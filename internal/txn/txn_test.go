package txn

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/storage"
)

func TestCompatibilityMatrix(t *testing.T) {
	// Rows: held mode; columns: requested mode.
	want := map[[2]Mode]bool{
		{S, S}: true, {S, X}: false, {S, W}: true, {S, Certify}: false,
		{X, S}: false, {X, X}: false, {X, W}: false, {X, Certify}: false,
		{W, S}: true, {W, X}: false, {W, W}: false, {W, Certify}: false,
		{Certify, S}: false, {Certify, X}: false, {Certify, W}: false, {Certify, Certify}: false,
	}
	for pair, exp := range want {
		if got := Compatible(pair[0], pair[1]); got != exp {
			t.Errorf("Compatible(%v, %v) = %v, want %v", pair[0], pair[1], got, exp)
		}
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := NewManager()
	r := TableResource("t")
	t1 := m.Begin(Serializable)
	t2 := m.Begin(Serializable)
	if _, err := t1.AcquireRead(r); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := t2.AcquireRead(r)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second S lock: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("S lock blocked behind S lock")
	}
	t1.Commit()
	t2.Commit()
}

func TestExclusiveBlocksReader(t *testing.T) {
	m := NewManager()
	r := TupleResource("t", storage.RID{Page: 0, Slot: 1})
	w := m.Begin(Serializable)
	if err := w.AcquireWrite(r); err != nil {
		t.Fatal(err)
	}
	rd := m.Begin(Serializable)
	acquired := make(chan struct{})
	go func() {
		if _, err := rd.AcquireRead(r); err != nil {
			t.Errorf("reader: %v", err)
		}
		close(acquired)
	}()
	select {
	case <-acquired:
		t.Fatal("reader acquired S lock while X lock held — strict 2PL must block")
	case <-time.After(50 * time.Millisecond):
	}
	w.Commit()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("reader never woke after writer commit")
	}
	rd.Commit()
	if st := m.Stats(); st.Waited == 0 {
		t.Error("Stats.Waited = 0, expected a blocked request")
	}
}

func TestReadUncommittedNeverBlocks(t *testing.T) {
	m := NewManager()
	r := TableResource("t")
	w := m.Begin(Serializable)
	if err := w.AcquireWrite(r); err != nil {
		t.Fatal(err)
	}
	rd := m.Begin(ReadUncommitted)
	done := make(chan struct{})
	go func() {
		if _, err := rd.AcquireRead(r); err != nil {
			t.Errorf("read-uncommitted read: %v", err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("READ UNCOMMITTED reader blocked behind X lock")
	}
	w.Commit()
	rd.Commit()
}

func TestReadCommittedReleasesEarly(t *testing.T) {
	m := NewManager()
	r := TableResource("t")
	rd := m.Begin(ReadCommitted)
	release, err := rd.AcquireRead(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.HeldModes(rd.ID())) != 1 {
		t.Fatal("S lock not recorded")
	}
	release()
	if len(m.HeldModes(rd.ID())) != 0 {
		t.Error("READ COMMITTED S lock not released by release()")
	}
	rd.Commit()
}

func Test2V2PLWriterCompatibleWithReaders(t *testing.T) {
	m := NewManager()
	r := TupleResource("t", storage.RID{})
	rd := m.Begin(Serializable)
	if _, err := rd.AcquireRead(r); err != nil {
		t.Fatal(err)
	}
	w := m.Begin(Serializable)
	done := make(chan error, 1)
	go func() { done <- w.AcquireW(r) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("W lock: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("W lock blocked behind S lock — 2V2PL writers must not block on readers")
	}
	// But certify must wait for the reader.
	certified := make(chan struct{})
	go func() {
		if err := w.Certify(r); err != nil {
			t.Errorf("certify: %v", err)
		}
		close(certified)
	}()
	select {
	case <-certified:
		t.Fatal("certify succeeded while a reader holds S — commit must be delayed")
	case <-time.After(50 * time.Millisecond):
	}
	rd.Commit()
	select {
	case <-certified:
	case <-time.After(time.Second):
		t.Fatal("certify never completed after reader commit")
	}
	w.Commit()
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	ra := TableResource("a")
	rb := TableResource("b")
	t1 := m.Begin(Serializable)
	t2 := m.Begin(Serializable)
	if err := t1.AcquireWrite(ra); err != nil {
		t.Fatal(err)
	}
	if err := t2.AcquireWrite(rb); err != nil {
		t.Fatal(err)
	}
	// t1 waits for b.
	t1err := make(chan error, 1)
	go func() { t1err <- t1.AcquireWrite(rb) }()
	time.Sleep(20 * time.Millisecond)
	// t2 requests a: cycle t2 -> t1 -> t2 must be detected.
	err := t2.AcquireWrite(ra)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("expected deadlock, got %v", err)
	}
	t2.Abort()
	if err := <-t1err; err != nil {
		t.Fatalf("t1 should acquire after victim aborts: %v", err)
	}
	t1.Commit()
	if st := m.Stats(); st.Deadlocks != 1 {
		t.Errorf("Deadlocks = %d, want 1", st.Deadlocks)
	}
}

func TestUpgradeSToX(t *testing.T) {
	m := NewManager()
	r := TableResource("t")
	tx := m.Begin(Serializable)
	if _, err := tx.AcquireRead(r); err != nil {
		t.Fatal(err)
	}
	if err := tx.AcquireWrite(r); err != nil {
		t.Fatalf("self-upgrade S->X: %v", err)
	}
	if got := m.HeldModes(tx.ID())[r]; got != X {
		t.Errorf("held mode = %v, want X", got)
	}
	// Re-acquiring a weaker mode is a no-op.
	if _, err := tx.AcquireRead(r); err != nil {
		t.Fatalf("re-read under X: %v", err)
	}
	if got := m.HeldModes(tx.ID())[r]; got != X {
		t.Errorf("mode downgraded to %v", got)
	}
	tx.Commit()
}

func TestTxnLifecycle(t *testing.T) {
	m := NewManager()
	tx := m.Begin(Serializable)
	if tx.State() != Active || tx.Isolation() != Serializable {
		t.Fatalf("fresh txn: %v %v", tx.State(), tx.Isolation())
	}
	var order []string
	tx.OnCommit(func() { order = append(order, "commit") })
	tx.OnRelease(func() { order = append(order, "release") })
	tx.OnAbort(func() { order = append(order, "abort") })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "commit" || order[1] != "release" {
		t.Errorf("hook order = %v", order)
	}
	if err := tx.Commit(); !errors.Is(err, ErrTxnDone) {
		t.Errorf("double commit = %v", err)
	}
	tx.Abort() // no-op, must not run abort hook
	if len(order) != 2 {
		t.Errorf("abort hook ran on finished txn: %v", order)
	}
	if err := tx.AcquireWrite(TableResource("t")); !errors.Is(err, ErrTxnDone) {
		t.Errorf("lock on finished txn = %v", err)
	}
}

func TestAbortReleasesLocks(t *testing.T) {
	m := NewManager()
	r := TableResource("t")
	t1 := m.Begin(Serializable)
	t1.AcquireWrite(r)
	aborted := false
	t1.OnAbort(func() { aborted = true })
	t1.Abort()
	if !aborted {
		t.Error("abort hook did not run")
	}
	t2 := m.Begin(Serializable)
	done := make(chan error, 1)
	go func() { done <- t2.AcquireWrite(r) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("lock not released by abort")
	}
	t2.Commit()
}

// TestManyReadersOneWriterStress mirrors the warehouse pattern: one
// 2V2PL-style writer cycling through tuples while readers take and release
// S locks. The test asserts freedom from lost wakeups and data races.
func TestManyReadersOneWriterStress(t *testing.T) {
	m := NewManager()
	resources := make([]Resource, 8)
	for i := range resources {
		resources[i] = TupleResource("t", storage.RID{Page: 0, Slot: i})
	}
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := m.Begin(Serializable)
				for _, res := range resources {
					if _, err := tx.AcquireRead(res); err != nil {
						tx.Abort()
						return
					}
				}
				tx.Commit()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tx := m.Begin(Serializable)
			ok := true
			for _, res := range resources {
				if err := tx.AcquireW(res); err != nil {
					ok = false
					break
				}
			}
			if ok {
				for _, res := range resources {
					if err := tx.Certify(res); err != nil {
						ok = false
						break
					}
				}
			}
			if ok {
				tx.Commit()
			} else {
				tx.Abort()
			}
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("stress test hung — probable lost wakeup or livelock")
	}
}

// TestWriterNotStarvedByReaderStream: with a continuous stream of new
// reader transactions, a waiting Certify (or X) request must still be
// granted — new readers queue behind it (FIFO fairness). Without fairness
// the 2V2PL commit path livelocks, which is how this bug was found.
func TestWriterNotStarvedByReaderStream(t *testing.T) {
	m := NewManager()
	r := TupleResource("t", storage.RID{})
	// One reader holds S; the writer will wait to certify.
	first := m.Begin(Serializable)
	if _, err := first.AcquireRead(r); err != nil {
		t.Fatal(err)
	}
	w := m.Begin(Serializable)
	if err := w.AcquireW(r); err != nil {
		t.Fatal(err)
	}
	certified := make(chan error, 1)
	go func() { certified <- w.Certify(r) }()
	time.Sleep(10 * time.Millisecond) // let the certify request queue

	// A stream of new readers: each must NOT be granted S ahead of the
	// queued certify; they finish quickly either way.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	overtook := make(chan struct{}, 1024)
	for g := 0; g < 3; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				tx := m.Begin(Serializable)
				got := make(chan error, 1)
				go func() {
					_, err := tx.AcquireRead(r)
					got <- err
				}()
				select {
				case err := <-got:
					if err == nil {
						select {
						case overtook <- struct{}{}:
						default:
						}
					}
					tx.Commit()
				case <-time.After(20 * time.Millisecond):
					// Correct behaviour: blocked behind the certify.
					tx.Abort()
					<-got
					tx.Commit()
					return
				}
			}
		}()
	}
	time.Sleep(30 * time.Millisecond)
	// Release the original reader: the certify must now complete even
	// though readers keep arriving.
	first.Commit()
	select {
	case err := <-certified:
		if err != nil {
			t.Fatalf("certify: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("certify starved by reader stream — FIFO fairness broken")
	}
	w.Commit()
	close(stop)
	readers.Wait()
	select {
	case <-overtook:
		t.Error("a new reader overtook the queued certify request")
	default:
	}
}

func TestIsolationAndStateStrings(t *testing.T) {
	if ReadUncommitted.String() != "READ UNCOMMITTED" || Serializable.String() != "SERIALIZABLE" {
		t.Error("IsolationLevel.String")
	}
	if Active.String() != "active" || Committed.String() != "committed" || Aborted.String() != "aborted" {
		t.Error("State.String")
	}
	if S.String() != "S" || Certify.String() != "C" {
		t.Error("Mode.String")
	}
	if rs := TupleResource("t", storage.RID{Page: 1, Slot: 2}).String(); rs != "t(1,2)" {
		t.Errorf("Resource.String = %q", rs)
	}
}
