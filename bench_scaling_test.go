package repro

import (
	"runtime"
	"strconv"
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/obs"
	"repro/internal/sql"
)

// BenchmarkReaderScaling measures reader-session throughput as GOMAXPROCS
// grows. The steady-state read path (expiration check, table lookup, query
// execution) performs no mutex acquisition, so queries/s should rise with
// the processor count instead of flat-lining on a contended latch — the
// experiment backing ARCHITECTURE.md's read-path memory model section.
func BenchmarkReaderScaling(b *testing.B) {
	reg := obs.NewRegistry()
	d := db.Open(db.Options{})
	s, err := core.Open(d, core.Options{N: 2, Metrics: reg})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.CreateTableSQL(`CREATE TABLE kv (k INT(8), v INT(8) UPDATABLE, UNIQUE KEY(k))`); err != nil {
		b.Fatal(err)
	}
	m, err := s.BeginMaintenance()
	if err != nil {
		b.Fatal(err)
	}
	for k := int64(0); k < 64; k++ {
		if err := m.Insert("kv", catalog.Tuple{catalog.NewInt(k), catalog.NewInt(k * 10)}); err != nil {
			b.Fatal(err)
		}
	}
	if err := m.Commit(); err != nil {
		b.Fatal(err)
	}
	sel, err := sql.ParseSelect(`SELECT SUM(v) FROM kv WHERE k < 32`)
	if err != nil {
		b.Fatal(err)
	}
	served := reg.Counter("bench_reader_queries_total", "queries served by BenchmarkReaderScaling")

	for _, procs := range []int{1, 2, 4, 8} {
		b.Run("procs="+strconv.Itoa(procs), func(b *testing.B) {
			if procs > runtime.NumCPU() {
				// Oversubscribing GOMAXPROCS past the physical cores
				// measures scheduler churn, not the read path; the scaling
				// claim only holds up to the hardware's parallelism.
				b.Skipf("only %d CPU(s) available", runtime.NumCPU())
			}
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			start := served.Value()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				sess := s.BeginSession()
				defer sess.Close()
				for pb.Next() {
					rows, err := sess.QueryStmt(sel, nil)
					if err != nil {
						b.Fatal(err)
					}
					if rows.Len() != 1 {
						b.Fatalf("rows = %d", rows.Len())
					}
					served.Inc()
				}
			})
			b.StopTimer()
			if secs := b.Elapsed().Seconds(); secs > 0 {
				b.ReportMetric(float64(served.Value()-start)/secs, "queries/s")
			}
		})
	}
}
