# Developer entry points. CI runs the same targets; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race stress lint crash crash-replica crash-shards fuzz fuzz-proto server-smoke replica-smoke shard-smoke bench-smoke bench-snapshot all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# stress runs the multi-goroutine concurrency tests (readers racing
# maintenance, shared sessions, mid-query expiry) under the race detector,
# with a generous timeout so slow CI machines finish the full matrix.
stress:
	$(GO) test -race -timeout 10m -run 'TestStress|TestSessionSharedAcrossGoroutines|TestMidQueryVersionAdvance|TestConcurrentReadersDuringMaintenance' -count=2 ./internal/core/

# lint runs vnlvet, the in-repo analyzer suite: the paper's latch,
# guarded-write, decision-table, metric-registry, and WAL-error invariants,
# plus the serving stack's goroutine-join, wire-deadline, frame-bound,
# message-exhaustiveness, and error-leak contracts (see ARCHITECTURE.md
# "Checked invariants"). All ten analyzers share one `go list` load. On
# findings the diagnostics also land in vnlvet-findings.txt, which CI
# uploads as an artifact.
lint:
	$(GO) run ./cmd/vnlvet -artifact vnlvet-findings.txt ./...

# crash runs the exhaustive crash-point sweep: the scripted 2VNL workload
# is crashed before every persisting I/O boundary, recovered, and checked
# against the scan oracle (see internal/crashtest and cmd/vnlcrash). The
# random-fault rounds layer torn/short/failing writes under the same sweep.
crash:
	$(GO) run ./cmd/vnlcrash -faults 3 -artifact crash-fail-script.txt
	$(GO) run ./cmd/vnlcrash -parallel -faults 1 -artifact crash-fail-script.txt

# crash-replica sweeps the WAL-shipping follower instead: a fresh replica
# is crashed at every persisting I/O boundary of its catch-up replay,
# power-cut, re-opened, and driven to full differential parity with the
# primary's history (see internal/crashtest ReplicaSweep).
crash-replica:
	$(GO) run ./cmd/vnlcrash -replica
	$(GO) run ./cmd/vnlcrash -replica -parallel -seed 2

# crash-shards sweeps the hash-sharded router: the cross-shard workload is
# crashed before every persisting I/O boundary of the two-phase publish
# (prepare record, per-shard WAL commits, flip record), every shard
# recovered, and the reopened epoch must be all-or-nothing (see
# internal/crashtest ShardSweep).
crash-shards:
	$(GO) run ./cmd/vnlcrash -shards 4
	$(GO) run ./cmd/vnlcrash -shards 3 -seed 2

# fuzz runs the WAL decode fuzzer (FuzzWALDecode: raw record payloads and
# whole log-file images) for a bounded session. CI runs the same target as a
# smoke test; override FUZZTIME for longer local sessions.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz=FuzzWALDecode -fuzztime=$(FUZZTIME) -run '^$$' ./internal/wal/

# fuzz-proto runs the wire-protocol fuzzer (FuzzFrameDecode: framing plus
# every message decoder; malformed input must error, never panic).
fuzz-proto:
	$(GO) test -fuzz=FuzzFrameDecode -fuzztime=$(FUZZTIME) -run '^$$' ./internal/server/

# server-smoke starts a real vnlserver, drives a vnlload burst over the
# wire, snapshots /metrics, and requires a clean SIGTERM drain (exit 0).
server-smoke:
	bash scripts/server_smoke.sh

# replica-smoke runs a live primary/replica pair: the replica joins during
# a paced write burst, is kill -9'd mid-replay, resumes by LSN from its
# local WAL copy, converges to exact COUNT/SUM parity, refuses writes, and
# both servers must drain cleanly on SIGTERM.
replica-smoke:
	bash scripts/replica_smoke.sh

# shard-smoke runs a live durable 4-shard server: vnlload burst with the
# client-side oracle audit, kill -9 mid-flip, restart over the same
# directory with an all-or-nothing epoch check, read-only session burst,
# and a clean SIGTERM drain.
shard-smoke:
	bash scripts/shard_smoke.sh

# bench-smoke runs every benchmark once, just to prove they still execute;
# real measurement runs use cmd/vnlbench.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...

# bench-snapshot runs the tracked benchmark set (reader scaling, maintain
# batch, vnlserver wire latency, single-thread query latency) and writes
# machine-readable BENCH_*.json snapshots next to the raw bench output; CI
# uploads them as artifacts.
bench-snapshot:
	bash scripts/bench_snapshot.sh
