# Developer entry points. CI runs the same targets; see
# .github/workflows/ci.yml.

GO ?= go

.PHONY: build test race stress lint bench-smoke all

all: build lint test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# stress runs the multi-goroutine concurrency tests (readers racing
# maintenance, shared sessions, mid-query expiry) under the race detector,
# with a generous timeout so slow CI machines finish the full matrix.
stress:
	$(GO) test -race -timeout 10m -run 'TestStress|TestSessionSharedAcrossGoroutines|TestMidQueryVersionAdvance|TestConcurrentReadersDuringMaintenance' -count=2 ./internal/core/

# lint runs vnlvet, the in-repo analyzer suite that enforces the paper's
# latch, guarded-write, decision-table, metric-registry, and WAL-error
# invariants (see ARCHITECTURE.md "Checked invariants").
lint:
	$(GO) run ./cmd/vnlvet ./...

# bench-smoke runs every benchmark once, just to prove they still execute;
# real measurement runs use cmd/bench.
bench-smoke:
	$(GO) test -run=^$$ -bench=. -benchtime=1x ./...
