// Package vnlclient is the Go client for vnlserver's binary protocol (see
// PROTOCOL.md): connection pooling with retry on transient dial failures,
// one-shot and session-pinned queries, server-side prepared statements, and
// maintenance delta batches.
//
// The client is safe for concurrent use. One-shot calls (Query, Prepare,
// Stmt.Query, Ping) borrow a pooled connection per call; Begin pins a
// connection to the returned Session until Close, because server-side
// reader sessions are connection-scoped. Prepared-statement ids are
// server-global, so a Stmt works on every connection and inside every
// Session of its Client.
package vnlclient

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/server"
)

// Wire types shared with the server package: the protocol structs are the
// client's vocabulary too.
type (
	// Rows is a query result: column names and tuples.
	Rows = server.Rows
	// Delta is one logical maintenance operation of a batch.
	Delta = server.Delta
	// BatchResult reports a committed maintenance batch.
	BatchResult = server.BatchDone
	// Error is a server-reported failure, carrying its wire error code.
	Error = server.WireError
	// Code classifies an Error.
	Code = server.ErrCode
)

// Params carries named query parameters.
type Params = map[string]catalog.Value

// Delta op codes.
const (
	DeltaInsert = server.DeltaInsert
	DeltaUpdate = server.DeltaUpdate
	DeltaDelete = server.DeltaDelete
)

// Error codes a caller is likely to branch on.
const (
	CodeSessionExpired = server.CodeSessionExpired
	CodeDraining       = server.CodeDraining
	CodeTooBusy        = server.CodeTooBusy
	CodeParse          = server.CodeParse
	CodeExec           = server.CodeExec
	CodeNotPrimary     = server.CodeNotPrimary
	CodeReadOnly       = server.CodeReadOnly
	CodeReplRange      = server.CodeReplRange
)

// ErrClosed is returned by operations on a closed Client or Session.
var ErrClosed = errors.New("vnlclient: closed")

// ErrTooStale is returned by Begin when the server is a replica lagging
// beyond Options.MaxStalenessVNs.
var ErrTooStale = errors.New("vnlclient: replica session exceeds the staleness bound")

// ErrorCode extracts the wire code from a server-reported error.
func ErrorCode(err error) (Code, bool) {
	var we *Error
	if errors.As(err, &we) {
		return we.Code, true
	}
	return 0, false
}

// Options tunes a Client. The zero value selects the defaults.
type Options struct {
	// DialTimeout bounds each TCP dial attempt. Default 5s.
	DialTimeout time.Duration
	// DialAttempts is the number of dial attempts before giving up; dial
	// failures (including a server answering too-busy or draining during
	// the handshake) are retried with backoff. Default 3.
	DialAttempts int
	// RetryBackoff is the initial inter-attempt backoff, doubling per
	// attempt. Default 50ms.
	RetryBackoff time.Duration
	// MaxIdle bounds pooled idle connections. Default 2.
	MaxIdle int
	// OpTimeout bounds each request/response round trip on a connection
	// (armed as the conn deadline before every exchange). Default 30s; a
	// negative value disables the deadline for callers that genuinely
	// want to wait forever.
	OpTimeout time.Duration
	// ClientName is sent in the handshake and appears in server logs.
	ClientName string
	// MaxStalenessVNs bounds how far behind its primary a replica may be
	// when Begin pins a session: if the server reports
	// PrimaryVN − VN > MaxStalenessVNs, the session is ended server-side
	// and Begin returns ErrTooStale. 0 disables the guard (any lag is
	// accepted); the guard never fires against a non-replica server, whose
	// PrimaryVN equals its VN.
	MaxStalenessVNs uint64
}

func (o Options) withDefaults() Options {
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.DialAttempts == 0 {
		o.DialAttempts = 3
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 50 * time.Millisecond
	}
	if o.MaxIdle == 0 {
		o.MaxIdle = 2
	}
	switch {
	case o.OpTimeout == 0:
		o.OpTimeout = 30 * time.Second
	case o.OpTimeout < 0:
		o.OpTimeout = 0
	}
	if o.ClientName == "" {
		o.ClientName = "vnlclient"
	}
	return o
}

// Client is a pooled connection to one vnlserver.
type Client struct {
	addr string
	opts Options

	// welcome is the handshake of the first established connection; the
	// server's identity (name, N, replica-ness) is stable across the pool.
	welcome server.Welcome

	mu     sync.Mutex
	idle   []*wireConn
	closed bool
}

// Dial connects to a vnlserver, validating the handshake before returning.
func Dial(addr string, opts Options) (*Client, error) {
	c := &Client{addr: addr, opts: opts.withDefaults()}
	wc, err := c.dial()
	if err != nil {
		return nil, err
	}
	c.welcome = wc.welcome
	c.put(wc)
	return c, nil
}

// IsReplica reports whether the server identified itself as a read-only
// replication follower in the handshake.
func (c *Client) IsReplica() bool { return c.welcome.Replica }

// Shards is the server's partition width from the handshake: 1 for a
// single store (or a server predating sharding), N for a hash-sharded
// server. Purely informational — routing, fan-out, and the cross-shard
// epoch are all server-side, so a client speaks to any width identically.
func (c *Client) Shards() int {
	if c.welcome.Shards == 0 {
		return 1
	}
	return int(c.welcome.Shards)
}

// Close closes the client and its pooled connections. Sessions begun from
// this client hold their own connections and must be closed separately.
func (c *Client) Close() error {
	c.mu.Lock()
	idle := c.idle
	c.idle = nil
	c.closed = true
	c.mu.Unlock()
	for _, wc := range idle {
		wc.close()
	}
	return nil
}

// dial opens and handshakes one connection, retrying transient failures
// (refused/timeout dials, and busy/draining handshake rejections) with
// exponential backoff.
func (c *Client) dial() (*wireConn, error) {
	var lastErr error
	backoff := c.opts.RetryBackoff
	for attempt := 0; attempt < c.opts.DialAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		nc, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err != nil {
			lastErr = err
			continue
		}
		wc := newWireConn(nc, c.opts.OpTimeout)
		w, err := wc.handshake(c.opts.ClientName)
		if err != nil {
			wc.close()
			lastErr = err
			// Busy/draining rejections and raw I/O failures are worth
			// another attempt; a protocol-level rejection of any other
			// kind will not improve with retries.
			if code, ok := ErrorCode(err); ok && code != CodeTooBusy && code != CodeDraining {
				return nil, err
			}
			continue
		}
		wc.welcome = w
		return wc, nil
	}
	return nil, fmt.Errorf("vnlclient: dialing %s: %w", c.addr, lastErr)
}

// get returns a pooled connection when one is idle, dialing otherwise.
// reused reports whether the connection served earlier traffic (a stale
// pooled connection may have been closed server-side, so its first failure
// is retried on a fresh one).
func (c *Client) get() (wc *wireConn, reused bool, err error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false, ErrClosed
	}
	if n := len(c.idle); n > 0 {
		wc = c.idle[n-1]
		c.idle = c.idle[:n-1]
		c.mu.Unlock()
		return wc, true, nil
	}
	c.mu.Unlock()
	wc, err = c.dial()
	return wc, false, err
}

// put returns a healthy connection to the pool.
func (c *Client) put(wc *wireConn) {
	if wc.broken {
		wc.close()
		return
	}
	c.mu.Lock()
	if c.closed || len(c.idle) >= c.opts.MaxIdle {
		c.mu.Unlock()
		wc.close()
		return
	}
	c.idle = append(c.idle, wc)
	c.mu.Unlock()
}

// do runs one request/response exchange on a pooled connection. When
// retryReused is true and the exchange fails on its first I/O against a
// pooled (previously used) connection, the request is replayed once on a
// fresh connection — the standard cure for pool members the server closed
// while idle (e.g. across a drain).
func (c *Client) do(t server.MsgType, body []byte, retryReused bool) (server.MsgType, []byte, error) {
	wc, reused, err := c.get()
	if err != nil {
		return 0, nil, err
	}
	rt, rbody, err := wc.roundTrip(t, body)
	if err != nil {
		wc.close()
		if !(reused && retryReused) {
			return 0, nil, err
		}
		if wc, err = c.dial(); err != nil {
			return 0, nil, err
		}
		if rt, rbody, err = wc.roundTrip(t, body); err != nil {
			wc.close()
			return 0, nil, err
		}
	}
	if rt == server.MsgErr {
		e, derr := server.DecodeErrMsg(rbody)
		c.put(wc)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, &Error{Code: e.Code, Msg: e.Msg}
	}
	c.put(wc)
	return rt, rbody, nil
}

// Ping round-trips a liveness probe.
func (c *Client) Ping() error {
	rt, _, err := c.do(server.MsgPing, nil, true)
	if err != nil {
		return err
	}
	if rt != server.MsgOK {
		return fmt.Errorf("vnlclient: ping answered with %v", rt)
	}
	return nil
}

// Query runs one SELECT in a one-shot server-side session.
func (c *Client) Query(sqlText string, params Params) (*Rows, error) {
	body := server.Query{SQL: sqlText, Params: params}.Encode()
	rt, rbody, err := c.do(server.MsgQuery, body, true)
	if err != nil {
		return nil, err
	}
	return decodeRows(rt, rbody)
}

// Prepare parses a SELECT into the server's shared statement cache and
// returns a handle valid on every connection of this client.
func (c *Client) Prepare(sqlText string) (*Stmt, error) {
	rt, rbody, err := c.do(server.MsgPrepare, server.Prepare{SQL: sqlText}.Encode(), true)
	if err != nil {
		return nil, err
	}
	if rt != server.MsgPrepared {
		return nil, fmt.Errorf("vnlclient: prepare answered with %v", rt)
	}
	p, err := server.DecodePrepared(rbody)
	if err != nil {
		return nil, err
	}
	return &Stmt{c: c, id: p.StmtID, sql: sqlText}, nil
}

// ApplyBatch submits one maintenance transaction. It is not retried on
// connection failure — the server may have committed before the link died;
// the caller decides how to reconcile.
func (c *Client) ApplyBatch(deltas []Delta) (BatchResult, error) {
	body := server.ApplyBatch{Deltas: deltas}.Encode()
	rt, rbody, err := c.do(server.MsgApplyBatch, body, false)
	if err != nil {
		return BatchResult{}, err
	}
	if rt != server.MsgBatchDone {
		return BatchResult{}, fmt.Errorf("vnlclient: batch answered with %v", rt)
	}
	return server.DecodeBatchDone(rbody)
}

// PollRepl runs one replication poll: it asks the primary for log bytes
// from fromLSN, waiting up to wait for new durable bytes when already at
// the durable end (the server clamps the hold to its own bound). epoch 0
// learns the primary's epoch from the reply; maxBytes 0 accepts the
// server's default segment size. pinned advertises the follower's GC pin —
// the slowest version its reader sessions still need, 0 for none — which a
// pin-tracking primary uses to clamp its GC floor. Retrying on a reused
// pooled connection is safe — a poll is a pure read.
func (c *Client) PollRepl(epoch, fromLSN, pinned uint64, maxBytes uint32, wait time.Duration) (server.ReplSegment, error) {
	m := server.ReplPoll{Epoch: epoch, FromLSN: fromLSN, MaxBytes: maxBytes, PinnedVN: pinned}
	if wait > 0 {
		if ot := c.opts.OpTimeout; ot > 0 && wait > ot/2 {
			// The hold must end well inside the op deadline or every quiet
			// poll reads as a dead server.
			wait = ot / 2
		}
		m.WaitMs = uint32(wait.Milliseconds())
	}
	rt, rbody, err := c.do(server.MsgReplPoll, m.Encode(), true)
	if err != nil {
		return server.ReplSegment{}, err
	}
	if rt != server.MsgReplSegment {
		return server.ReplSegment{}, fmt.Errorf("vnlclient: repl poll answered with %v", rt)
	}
	return server.DecodeReplSegment(rbody)
}

// Stmt is a server-side prepared SELECT.
type Stmt struct {
	c   *Client
	id  uint32
	sql string
}

// SQL returns the statement's original text.
func (st *Stmt) SQL() string { return st.sql }

// Query executes the statement in a one-shot session.
func (st *Stmt) Query(params Params) (*Rows, error) {
	body := server.ExecStmt{StmtID: st.id, Params: params}.Encode()
	rt, rbody, err := st.c.do(server.MsgExecStmt, body, true)
	if err != nil {
		return nil, err
	}
	return decodeRows(rt, rbody)
}

// Session is a reader session pinned to one connection: every query it runs
// observes the database version captured at Begin, per the paper's session
// consistency guarantee, until Close or expiry (ErrorCode ==
// CodeSessionExpired).
type Session struct {
	c  *Client
	mu sync.Mutex
	wc *wireConn
	// sid is the connection-scoped session id; vn the pinned version;
	// primaryVN the primary's version the server reported at Begin (equal
	// to vn on a non-replica server).
	sid       uint32
	vn        uint64
	primaryVN uint64
	closed    bool
}

// Begin opens a reader session at the server's current version.
func (c *Client) Begin() (*Session, error) {
	wc, reused, err := c.get()
	if err != nil {
		return nil, err
	}
	rt, rbody, err := wc.roundTrip(server.MsgBeginSession, nil)
	if err != nil {
		wc.close()
		if !reused {
			return nil, err
		}
		// The pooled connection was stale; one fresh attempt.
		if wc, err = c.dial(); err != nil {
			return nil, err
		}
		if rt, rbody, err = wc.roundTrip(server.MsgBeginSession, nil); err != nil {
			wc.close()
			return nil, err
		}
	}
	if rt == server.MsgErr {
		e, derr := server.DecodeErrMsg(rbody)
		c.put(wc)
		if derr != nil {
			return nil, derr
		}
		return nil, &Error{Code: e.Code, Msg: e.Msg}
	}
	if rt != server.MsgSession {
		wc.close()
		return nil, fmt.Errorf("vnlclient: begin answered with %v", rt)
	}
	sm, err := server.DecodeSession(rbody)
	if err != nil {
		wc.close()
		return nil, err
	}
	if lim := c.opts.MaxStalenessVNs; lim > 0 && sm.PrimaryVN > sm.VN && sm.PrimaryVN-sm.VN > lim {
		// End the just-opened server-side session before refusing it, so
		// the replica's GC floor does not stay pinned by a session nobody
		// will read from.
		if _, _, err := wc.roundTrip(server.MsgEndSession, server.EndSession{SID: sm.SID}.Encode()); err != nil {
			wc.close()
		} else {
			c.put(wc)
		}
		return nil, fmt.Errorf("%w: session VN %d, primary VN %d, bound %d",
			ErrTooStale, sm.VN, sm.PrimaryVN, lim)
	}
	return &Session{c: c, wc: wc, sid: sm.SID, vn: sm.VN, primaryVN: sm.PrimaryVN}, nil
}

// VN returns the database version the session reads.
func (s *Session) VN() uint64 { return s.vn }

// PrimaryVN returns the primary's version the server reported at Begin;
// on a non-replica server it equals VN.
func (s *Session) PrimaryVN() uint64 { return s.primaryVN }

// Lag returns how many versions behind its primary this session began
// (always 0 against a non-replica server).
func (s *Session) Lag() uint64 {
	if s.primaryVN > s.vn {
		return s.primaryVN - s.vn
	}
	return 0
}

// do runs one exchange on the session's pinned connection.
func (s *Session) do(t server.MsgType, body []byte) (server.MsgType, []byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, ErrClosed
	}
	rt, rbody, err := s.wc.roundTrip(t, body)
	if err != nil {
		// The pinned connection is gone and the server-side session with
		// it; there is nothing to retry onto.
		s.closed = true
		s.wc.close()
		return 0, nil, err
	}
	if rt == server.MsgErr {
		e, derr := server.DecodeErrMsg(rbody)
		if derr != nil {
			return 0, nil, derr
		}
		return 0, nil, &Error{Code: e.Code, Msg: e.Msg}
	}
	return rt, rbody, nil
}

// Query runs a SELECT at the session's version.
func (s *Session) Query(sqlText string, params Params) (*Rows, error) {
	rt, rbody, err := s.do(server.MsgQuery, server.Query{SID: s.sid, SQL: sqlText, Params: params}.Encode())
	if err != nil {
		return nil, err
	}
	return decodeRows(rt, rbody)
}

// QueryStmt runs a prepared SELECT at the session's version.
func (s *Session) QueryStmt(st *Stmt, params Params) (*Rows, error) {
	if st.c != s.c {
		return nil, fmt.Errorf("vnlclient: statement prepared on a different client")
	}
	rt, rbody, err := s.do(server.MsgExecStmt, server.ExecStmt{SID: s.sid, StmtID: st.id, Params: params}.Encode())
	if err != nil {
		return nil, err
	}
	return decodeRows(rt, rbody)
}

// Close ends the session and returns its connection to the pool. Closing a
// closed session is a no-op.
func (s *Session) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	rt, rbody, err := s.wc.roundTrip(server.MsgEndSession, server.EndSession{SID: s.sid}.Encode())
	if err != nil {
		s.wc.close()
		return err
	}
	if rt == server.MsgErr {
		s.c.put(s.wc)
		e, derr := server.DecodeErrMsg(rbody)
		if derr != nil {
			return derr
		}
		return &Error{Code: e.Code, Msg: e.Msg}
	}
	s.c.put(s.wc)
	return nil
}

func decodeRows(rt server.MsgType, body []byte) (*Rows, error) {
	if rt != server.MsgRows {
		return nil, fmt.Errorf("vnlclient: query answered with %v", rt)
	}
	r, err := server.DecodeRows(body)
	if err != nil {
		return nil, err
	}
	return &r, nil
}
