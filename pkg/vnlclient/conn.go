package vnlclient

import (
	"bufio"
	"fmt"
	"net"
	"time"

	"repro/internal/server"
)

// wireConn is one framed TCP connection. It is not safe for concurrent
// use; the Client pool and the Session mutex serialize access.
type wireConn struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	welcome server.Welcome
	// opTimeout bounds each round trip (Options.OpTimeout, resolved).
	opTimeout time.Duration
	// broken marks a connection that failed mid-exchange; the pool drops
	// it instead of recycling.
	broken bool
}

func newWireConn(nc net.Conn, opTimeout time.Duration) *wireConn {
	return &wireConn{
		nc:        nc,
		br:        bufio.NewReader(nc),
		bw:        bufio.NewWriter(nc),
		opTimeout: opTimeout,
	}
}

// roundTrip writes one request frame and reads the matched response. The
// protocol is strictly request/response per connection, so the next frame
// is always the answer. Each round trip arms the connection deadline
// first, so a stalled or vanished server surfaces as a timeout error
// instead of wedging the caller (and its pool slot) forever.
func (w *wireConn) roundTrip(t server.MsgType, body []byte) (server.MsgType, []byte, error) {
	if w.opTimeout > 0 {
		_ = w.nc.SetDeadline(time.Now().Add(w.opTimeout))
	}
	if err := server.WriteFrame(w.bw, t, body); err != nil {
		w.broken = true
		return 0, nil, err
	}
	if err := w.bw.Flush(); err != nil {
		w.broken = true
		return 0, nil, err
	}
	rt, rbody, err := server.ReadFrame(w.br)
	if err != nil {
		w.broken = true
		return 0, nil, err
	}
	return rt, rbody, nil
}

// handshake sends Hello and validates the Welcome. A server that answers
// with MsgErr (draining, too busy) surfaces that error so the dialer can
// decide whether to retry.
func (w *wireConn) handshake(clientName string) (server.Welcome, error) {
	rt, body, err := w.roundTrip(server.MsgHello, server.Hello{ClientName: clientName}.Encode())
	if err != nil {
		return server.Welcome{}, err
	}
	switch rt {
	case server.MsgWelcome:
		return server.DecodeWelcome(body)
	case server.MsgErr:
		e, derr := server.DecodeErrMsg(body)
		if derr != nil {
			return server.Welcome{}, derr
		}
		return server.Welcome{}, &Error{Code: e.Code, Msg: e.Msg}
	case server.MsgHello, server.MsgPing, server.MsgQuery, server.MsgBeginSession,
		server.MsgEndSession, server.MsgPrepare, server.MsgExecStmt, server.MsgApplyBatch,
		server.MsgReplPoll, server.MsgOK, server.MsgRows, server.MsgSession,
		server.MsgPrepared, server.MsgBatchDone, server.MsgReplSegment:
		// Known types that are never a legal handshake answer: same failure
		// as an unknown future type, listed so msgexhaustive proves every
		// kind was considered.
		return server.Welcome{}, fmt.Errorf("vnlclient: handshake answered with %v", rt)
	default:
		return server.Welcome{}, fmt.Errorf("vnlclient: handshake answered with %v", rt)
	}
}

func (w *wireConn) close() {
	w.broken = true
	_ = w.nc.Close()
}
