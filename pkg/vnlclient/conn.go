package vnlclient

import (
	"bufio"
	"fmt"
	"net"

	"repro/internal/server"
)

// wireConn is one framed TCP connection. It is not safe for concurrent
// use; the Client pool and the Session mutex serialize access.
type wireConn struct {
	nc      net.Conn
	br      *bufio.Reader
	bw      *bufio.Writer
	welcome server.Welcome
	// broken marks a connection that failed mid-exchange; the pool drops
	// it instead of recycling.
	broken bool
}

func newWireConn(nc net.Conn) *wireConn {
	return &wireConn{
		nc: nc,
		br: bufio.NewReader(nc),
		bw: bufio.NewWriter(nc),
	}
}

// roundTrip writes one request frame and reads the matched response. The
// protocol is strictly request/response per connection, so the next frame
// is always the answer.
func (w *wireConn) roundTrip(t server.MsgType, body []byte) (server.MsgType, []byte, error) {
	if err := server.WriteFrame(w.bw, t, body); err != nil {
		w.broken = true
		return 0, nil, err
	}
	if err := w.bw.Flush(); err != nil {
		w.broken = true
		return 0, nil, err
	}
	rt, rbody, err := server.ReadFrame(w.br)
	if err != nil {
		w.broken = true
		return 0, nil, err
	}
	return rt, rbody, nil
}

// handshake sends Hello and validates the Welcome. A server that answers
// with MsgErr (draining, too busy) surfaces that error so the dialer can
// decide whether to retry.
func (w *wireConn) handshake(clientName string) (server.Welcome, error) {
	rt, body, err := w.roundTrip(server.MsgHello, server.Hello{ClientName: clientName}.Encode())
	if err != nil {
		return server.Welcome{}, err
	}
	switch rt {
	case server.MsgWelcome:
		return server.DecodeWelcome(body)
	case server.MsgErr:
		e, derr := server.DecodeErrMsg(body)
		if derr != nil {
			return server.Welcome{}, derr
		}
		return server.Welcome{}, &Error{Code: e.Code, Msg: e.Msg}
	default:
		return server.Welcome{}, fmt.Errorf("vnlclient: handshake answered with %v", rt)
	}
}

func (w *wireConn) close() {
	w.broken = true
	_ = w.nc.Close()
}
