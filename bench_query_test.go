package repro

import (
	"testing"

	"repro/internal/catalog"
	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/exec"
	"repro/internal/obs"
)

// BenchmarkQueryLatency measures single-thread ad-hoc query latency through
// the three read paths the plan cache distinguishes:
//
//	adhoc_cached    Session.Query with the store-level plan cache on — the
//	                steady state skips parse, rewrite, and compilation, and
//	                runs the vectorized batch executor
//	adhoc_uncached  the same query with the cache disabled (PlanCacheSize
//	                -1): parse + §4.1 rewrite + tree-walking execution per
//	                call, the pre-cache behaviour
//	prepared        Store.Prepare + Session.QueryPrepared, the explicit
//	                statement-handle path the cache brings ad-hoc text up to
//
// The cached ad-hoc path beating the uncached one is an acceptance criterion
// of the plan-cache change; scripts/bench_snapshot.sh snapshots this
// benchmark into BENCH_query_latency.json.
func BenchmarkQueryLatency(b *testing.B) {
	const query = `SELECT k, v FROM kv WHERE v >= 100 AND k < 192`

	open := func(b *testing.B, opts core.Options) *core.Store {
		b.Helper()
		opts.Metrics = obs.NewRegistry()
		s, err := core.Open(db.Open(db.Options{}), opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.CreateTableSQL(`CREATE TABLE kv (k INT(8), v INT(8) UPDATABLE, UNIQUE KEY(k))`); err != nil {
			b.Fatal(err)
		}
		m, err := s.BeginMaintenance()
		if err != nil {
			b.Fatal(err)
		}
		for k := int64(0); k < 256; k++ {
			if err := m.Insert("kv", catalog.Tuple{catalog.NewInt(k), catalog.NewInt(k * 10)}); err != nil {
				b.Fatal(err)
			}
		}
		if err := m.Commit(); err != nil {
			b.Fatal(err)
		}
		return s
	}

	runQueries := func(b *testing.B, sess *core.Session, each func() (*exec.Rows, error)) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rows, err := each()
			if err != nil {
				b.Fatal(err)
			}
			if rows.Len() != 182 {
				b.Fatalf("rows = %d, want 182", rows.Len())
			}
		}
	}

	b.Run("adhoc_cached", func(b *testing.B) {
		s := open(b, core.Options{N: 2})
		sess := s.BeginSession()
		defer sess.Close()
		runQueries(b, sess, func() (*exec.Rows, error) { return sess.Query(query, nil) })
	})

	b.Run("adhoc_uncached", func(b *testing.B) {
		s := open(b, core.Options{N: 2, PlanCacheSize: -1})
		sess := s.BeginSession()
		defer sess.Close()
		runQueries(b, sess, func() (*exec.Rows, error) { return sess.Query(query, nil) })
	})

	b.Run("prepared", func(b *testing.B) {
		s := open(b, core.Options{N: 2})
		p, err := s.Prepare(query)
		if err != nil {
			b.Fatal(err)
		}
		sess := s.BeginSession()
		defer sess.Close()
		runQueries(b, sess, func() (*exec.Rows, error) { return sess.QueryPrepared(p, nil) })
	})
}
