package repro

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/db"
	"repro/internal/mvcc"
	"repro/internal/warehouse"
	"repro/internal/workload"
)

// TestWarehouseEndToEnd drives the full stack the way a deployment would:
// a week of daily feed batches propagated through 2VNL maintenance
// transactions into three materialized summary views, with concurrent
// analyst sessions running roll-up + drill-down pairs the whole time.
// Afterwards every view is audited against a recomputation from the fact
// history, and garbage collection reclaims dead summary tuples.
func TestWarehouseEndToEnd(t *testing.T) {
	for _, n := range []int{2, 3} {
		n := n
		t.Run(map[int]string{2: "2VNL", 3: "3VNL"}[n], func(t *testing.T) {
			engine := db.Open(db.Options{})
			store, err := core.Open(engine, core.Options{N: n})
			if err != nil {
				t.Fatal(err)
			}
			wh := warehouse.New(store)
			for _, def := range []warehouse.ViewDef{
				{Name: "DailySales", GroupBy: []string{"city", "state", "product_line", "date"},
					Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "amount", As: "total_sales"}}},
				{Name: "StateSales", GroupBy: []string{"state"},
					Aggregates: []warehouse.Aggregate{
						{Func: "sum", Source: "amount", As: "total_sales"},
						{Func: "count", As: "num_sales"}}},
				{Name: "GolfByCity", GroupBy: []string{"city"},
					Aggregates: []warehouse.Aggregate{{Func: "sum", Source: "quantity", As: "qty"}},
					Filter:     func(f warehouse.Fact) bool { return f.ProductLine == "golf equip" }},
			} {
				if _, err := wh.Materialize(def); err != nil {
					t.Fatal(err)
				}
			}

			gen := workload.New(int64(100 + n))
			var readers sync.WaitGroup
			stop := make(chan struct{})
			errCh := make(chan error, 32)
			for r := 0; r < 3; r++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						sess := store.BeginSession()
						total, err := sess.Query(
							`SELECT SUM(total_sales) FROM DailySales WHERE state = 'CA'`, nil)
						if errors.Is(err, core.ErrSessionExpired) {
							sess.Close()
							continue
						}
						if err != nil {
							errCh <- err
							sess.Close()
							return
						}
						drill, err := sess.Query(
							`SELECT city, SUM(total_sales) FROM DailySales WHERE state = 'CA' GROUP BY city`, nil)
						if errors.Is(err, core.ErrSessionExpired) {
							sess.Close()
							continue
						}
						if err != nil {
							errCh <- err
							sess.Close()
							return
						}
						var sum int64
						for _, row := range drill.Tuples {
							sum += row[1].Int()
						}
						want := int64(0)
						if !total.Tuples[0][0].IsNull() {
							want = total.Tuples[0][0].Int()
						}
						if sum != want {
							errCh <- errors.New("drill-down does not add up to roll-up within one session")
							sess.Close()
							return
						}
						sess.Close()
					}
				}()
			}

			const days = 7
			for day := 0; day < days; day++ {
				if err := wh.RefreshBatch(gen.Batch(400, 10)); err != nil {
					t.Fatal(err)
				}
				gen.NextDay()
			}
			close(stop)
			readers.Wait()
			close(errCh)
			for err := range errCh {
				t.Fatal(err)
			}

			if store.CurrentVN() != core.VN(1+days) {
				t.Errorf("currentVN = %d, want %d", store.CurrentVN(), 1+days)
			}
			if diff := wh.CheckViews(gen.Sold()); diff != "" {
				t.Fatalf("view audit: %s", diff)
			}
			// GC: retractions produced dead summary tuples somewhere along
			// the way; after GC none remain and the audit still passes.
			st := store.GC()
			if dead := store.DeadTuples(); dead["DailySales"] != 0 {
				t.Errorf("dead tuples after GC: %v (gc: %+v)", dead, st)
			}
			if diff := wh.CheckViews(gen.Sold()); diff != "" {
				t.Fatalf("view audit after GC: %s", diff)
			}
		})
	}
}

// TestSchemesSideBySide runs an identical batch history through 2VNL and
// every §6 baseline and asserts they converge to the same final state —
// the cross-scheme differential test at integration scale.
func TestSchemesSideBySide(t *testing.T) {
	build := []func() (mvcc.Scheme, error){
		func() (mvcc.Scheme, error) { return mvcc.NewS2PL(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewTwoV2PL(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewMV2PL(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewMV2PL(mvcc.Config{CacheSlots: 1}) },
		func() (mvcc.Scheme, error) { return mvcc.NewOffline(mvcc.Config{}) },
		func() (mvcc.Scheme, error) { return mvcc.NewVNL(mvcc.Config{}, 2) },
		func() (mvcc.Scheme, error) { return mvcc.NewVNL(mvcc.Config{}, 4) },
	}
	const rows, batches = 500, 8
	var want []int64 // final expected value per key, -1 = deleted
	for _, mk := range build {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		initial := make([]mvcc.KV, rows)
		for i := range initial {
			initial[i] = mvcc.KV{K: int64(i), V: 10}
		}
		if err := s.Load(initial); err != nil {
			t.Fatal(err)
		}
		// liveKeys is an ordered list so the random history is identical
		// for every scheme (map iteration order would desynchronize them).
		liveKeys := make([]int64, rows)
		for i := range liveKeys {
			liveKeys[i] = int64(i)
		}
		next := int64(rows)
		rng := rand.New(rand.NewSource(99))
		for b := 0; b < batches; b++ {
			w, err := s.BeginWriter()
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			for op := 0; op < 60; op++ {
				switch rng.Intn(4) {
				case 0:
					k, v := next, rng.Int63n(100)
					next++
					if err := w.Insert(k, v); err != nil {
						t.Fatalf("%s insert: %v", s.Name(), err)
					}
					liveKeys = append(liveKeys, k)
				case 3:
					if len(liveKeys) == 0 {
						continue
					}
					i := rng.Intn(len(liveKeys))
					k := liveKeys[i]
					if err := w.Delete(k); err != nil {
						t.Fatalf("%s delete %d: %v", s.Name(), k, err)
					}
					liveKeys = append(liveKeys[:i], liveKeys[i+1:]...)
				default:
					if len(liveKeys) == 0 {
						continue
					}
					k := liveKeys[rng.Intn(len(liveKeys))]
					v := rng.Int63n(100)
					if err := w.Update(k, v); err != nil {
						t.Fatalf("%s update %d: %v", s.Name(), k, err)
					}
				}
			}
			if err := w.Commit(); err != nil {
				t.Fatalf("%s commit: %v", s.Name(), err)
			}
		}
		// Expectations come from the first scheme's final state; every
		// later scheme must match it key for key.
		r, err := s.BeginReader()
		if err != nil {
			t.Fatal(err)
		}
		got := make([]int64, next)
		for k := int64(0); k < next; k++ {
			v, ok, err := r.Get(k)
			if err != nil {
				t.Fatalf("%s get: %v", s.Name(), err)
			}
			if !ok {
				got[k] = -1
			} else {
				got[k] = v
			}
		}
		r.Close()
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d keys vs %d", s.Name(), len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("%s diverged at key %d: %d vs %d", s.Name(), k, got[k], want[k])
			}
		}
	}
}
