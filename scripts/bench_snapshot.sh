#!/usr/bin/env bash
# bench_snapshot.sh — run the snapshot benchmark set and write one
# BENCH_<group>.json per group, next to a bench-raw-<group>.txt with the
# unparsed `go test -bench` output.
#
# Groups:
#   reader_scaling  BenchmarkReaderScaling   (root package)
#   maintain_batch  BenchmarkMaintainBatch   (root package)
#   wire_latency    BenchmarkWirePing        (internal/server, single run)
#   query_latency   BenchmarkQueryLatency    (root package; cached vs
#                                             uncached ad-hoc, prepared)
#   replica_catchup BenchmarkReplicaCatchup  (internal/repl; cold-start
#                                             time-to-VN-parity per backlog)
#   shard_scaling   BenchmarkShardScaling    (internal/shard; two-phase
#                                             publish and fan-out scan per
#                                             shard width)
#
# Each JSON file carries the commit, timestamp, and platform alongside the
# parsed ns/op, B/op, and allocs/op per benchmark, so CI artifacts are
# directly diffable across runs without re-parsing Go bench text.
#
# Environment:
#   BENCH_OUT_DIR        output directory (default: repo root)
#   READER_BENCHTIME     -benchtime for reader_scaling  (default 1000x)
#   BATCH_BENCHTIME      -benchtime for maintain_batch  (default 3x)
#   WIRE_BENCHTIME       -benchtime for wire_latency    (default 1000x)
#   QUERY_BENCHTIME      -benchtime for query_latency   (default 1000x)
#   REPLICA_BENCHTIME    -benchtime for replica_catchup (default 20x)
#   SHARD_BENCHTIME      -benchtime for shard_scaling   (default 20x)
set -euo pipefail

cd "$(dirname "$0")/.."
out_dir="${BENCH_OUT_DIR:-.}"
mkdir -p "$out_dir"

commit=$(git rev-parse HEAD 2>/dev/null || echo unknown)
stamp=$(date -u +%Y-%m-%dT%H:%M:%SZ)
goos=$(go env GOOS)
goarch=$(go env GOARCH)

# parse_bench turns `go test -bench` result lines into a JSON results array
# (bodies only; the caller wraps them in the snapshot envelope).
parse_bench() {
  awk '
    /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      iters = $2
      ns = ""; bytes = ""; allocs = ""
      for (i = 3; i < NF; i++) {
        if ($(i+1) == "ns/op") ns = $i
        else if ($(i+1) == "B/op") bytes = $i
        else if ($(i+1) == "allocs/op") allocs = $i
      }
      if (ns == "") next
      if (n++) printf ",\n"
      printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
      if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
      if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
      printf "}"
    }
    END { if (n) printf "\n" }
  '
}

run_group() {
  local group="$1" pattern="$2" pkg="$3" benchtime="$4"
  local raw="$out_dir/bench-raw-$group.txt"
  local json="$out_dir/BENCH_$group.json"

  echo "== $group: go test -bench '$pattern' -benchtime $benchtime $pkg" >&2
  go test -run '^$' -bench "$pattern" -benchtime "$benchtime" -benchmem -count=1 "$pkg" 2>&1 | tee "$raw"

  local results
  results=$(parse_bench <"$raw")
  if [ -z "$results" ]; then
    echo "bench_snapshot: no benchmark results parsed for $group" >&2
    exit 1
  fi
  {
    printf '{\n'
    printf '  "group": "%s",\n' "$group"
    printf '  "commit": "%s",\n' "$commit"
    printf '  "timestamp": "%s",\n' "$stamp"
    printf '  "goos": "%s",\n' "$goos"
    printf '  "goarch": "%s",\n' "$goarch"
    printf '  "benchtime": "%s",\n' "$benchtime"
    printf '  "results": [\n'
    printf '%s' "$results"
    printf '  ]\n'
    printf '}\n'
  } >"$json"

  # Best-effort validation: a malformed snapshot should fail loudly here,
  # not in whatever downstream tooling reads the artifact.
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool <"$json" >/dev/null
  fi
  echo "wrote $json" >&2
}

run_group reader_scaling 'BenchmarkReaderScaling' '.' "${READER_BENCHTIME:-1000x}"
run_group maintain_batch 'BenchmarkMaintainBatch' '.' "${BATCH_BENCHTIME:-3x}"
run_group wire_latency '^BenchmarkWirePing$' './internal/server/' "${WIRE_BENCHTIME:-1000x}"
run_group query_latency '^BenchmarkQueryLatency$' '.' "${QUERY_BENCHTIME:-1000x}"
run_group replica_catchup '^BenchmarkReplicaCatchup$' './internal/repl/' "${REPLICA_BENCHTIME:-20x}"
run_group shard_scaling '^BenchmarkShardScaling$' './internal/shard/' "${SHARD_BENCHTIME:-20x}"
