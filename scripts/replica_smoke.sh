#!/usr/bin/env bash
# Replica smoke: start a journaled primary (replication feed on), stream a
# paced vnlload burst at it in the background, bring a replica up mid-burst
# (cold-start catch-up while the primary keeps advancing), kill -9 the
# replica mid-replay and restart it (resume by LSN from the local WAL copy —
# same epoch, no rebuild), wait for the burst to finish, then drive a
# read-only burst against the replica with a COUNT/SUM cross-check against
# the primary, snapshot the replica's /metrics, and require clean SIGTERM
# drains from both servers. CI uploads the metrics snapshot as an artifact;
# run locally with `make replica-smoke`.
set -euo pipefail

PADDR="${PADDR:-127.0.0.1:7432}"
PHTTP="${PHTTP:-127.0.0.1:7433}"
RADDR="${RADDR:-127.0.0.1:7542}"
RHTTP="${RHTTP:-127.0.0.1:7543}"
OUT="${OUT:-replica-metrics.txt}"
DAYS="${DAYS:-40}"
FACTS="${FACTS:-500}"
PACE="${PACE:-150ms}"

go build -o bin/vnlserver ./cmd/vnlserver
go build -o bin/vnlload ./cmd/vnlload

work=$(mktemp -d)
PRI="" REP="" LOAD=""
cleanup() {
  kill -9 $PRI $REP $LOAD 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

wait_ready() { # host:port, description
  for i in $(seq 1 150); do
    if curl -fsS "http://$1/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "$2 never became ready" >&2
  return 1
}

bin/vnlserver -addr "$PADDR" -http "$PHTTP" -kv -wal "$work/primary.wal" &
PRI=$!
wait_ready "$PHTTP" "primary"

# The paced write burst runs in the background for the whole choreography:
# the replica joins, dies, and resumes while days are still streaming.
bin/vnlload -dsn "$PADDR" -days "$DAYS" -facts "$FACTS" -pace "$PACE" -report 5s &
LOAD=$!

start_replica() {
  bin/vnlserver -addr "$RADDR" -http "$RHTTP" \
    -primary "$PADDR" -replica-wal "$work/replica.wal" -max-lag-vns 5 &
  REP=$!
}
start_replica
wait_ready "$RHTTP" "replica (cold start)"

# Crash the replica mid-replay and restart it over the same local WAL copy:
# it must truncate any torn tail and resume by LSN under the pinned epoch,
# with no gap and no double-apply.
kill -9 $REP
wait $REP 2>/dev/null || true
start_replica
wait_ready "$RHTTP" "replica (restart after kill -9)"

# Let the writer finish, then require exact convergence: the read-only
# burst checks session stability and the write-refusal code, and the
# verify step retries until the replica's COUNT/SUM equals the primary's.
if ! wait $LOAD; then
  echo "vnlload burst failed" >&2
  exit 1
fi
LOAD=""
bin/vnlload -dsn "$RADDR" -readonly -reads 300 -verify-dsn "$PADDR"

curl -fsS "http://$RHTTP/metrics" | tee "$OUT"
curl -fsS "http://$RHTTP/healthz" >/dev/null

drain() { # pid, description
  kill -TERM "$1"
  if wait "$1"; then
    echo "$2: graceful drain, exit 0"
  else
    echo "$2 exited $? after SIGTERM; expected a clean drain" >&2
    exit 1
  fi
}
drain $REP "replica"
REP=""
drain $PRI "primary"
PRI=""
trap - EXIT
rm -rf "$work"

# The snapshot must show real replication happened after the restart:
# shipped payload bytes and replayed commits, plus the freshness gauges the
# operator dashboard reads.
grep -q 'repl_bytes_total' "$OUT"
grep -q 'repl_commits_replayed_total' "$OUT"
grep -q 'repl_lag_vns' "$OUT"
grep -q 'repl_last_segment_unix' "$OUT"
echo "replica smoke passed (metrics in $OUT)"
