#!/usr/bin/env bash
# Server smoke: build vnlserver + vnlload, start the server with the kv
# benchmark table, drive a burst over the wire (ApplyBatch maintenance +
# session reads + oracle audit), snapshot /metrics, then SIGTERM and require
# a clean graceful-drain exit (code 0). CI uploads the metrics snapshot as
# an artifact; run locally with `make server-smoke`.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:7432}"
HTTP="${HTTP:-127.0.0.1:7433}"
OUT="${OUT:-server-metrics.txt}"
DAYS="${DAYS:-10}"
FACTS="${FACTS:-1000}"

go build -o bin/vnlserver ./cmd/vnlserver
go build -o bin/vnlload ./cmd/vnlload

bin/vnlserver -addr "$ADDR" -http "$HTTP" -kv &
SRV=$!
trap 'kill -9 $SRV 2>/dev/null || true' EXIT

for i in $(seq 1 50); do
  if curl -fsS "http://$HTTP/readyz" >/dev/null 2>&1; then break; fi
  if [ "$i" = 50 ]; then echo "server never became ready" >&2; exit 1; fi
  sleep 0.2
done

bin/vnlload -dsn "$ADDR" -days "$DAYS" -facts "$FACTS" -report 2s

curl -fsS "http://$HTTP/metrics" | tee "$OUT"
curl -fsS "http://$HTTP/healthz" >/dev/null

kill -TERM $SRV
if wait $SRV; then
  echo "graceful drain: exit 0"
else
  rc=$?
  echo "vnlserver exited $rc after SIGTERM; expected a clean drain" >&2
  exit 1
fi
trap - EXIT

# The snapshot must show the burst actually went over the wire.
grep -q 'server_batches_total' "$OUT"
grep -q 'server_queries_total' "$OUT"
echo "server smoke passed (metrics in $OUT)"
