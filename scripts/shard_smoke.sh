#!/usr/bin/env bash
# Shard smoke: start a durable 4-shard vnlserver (per-shard WALs plus the
# epoch log under one directory), drive a vnlload burst with its
# client-side oracle audit (aggregates fan in client-side against a
# sharded server), kill -9 the server mid-burst — epoch flips are running
# flat-out, so the kill routinely lands mid-publish — restart it over the
# same directory, and require the recovered shard set to reopen at one
# all-or-nothing epoch: every shard_<i>_vn gauge equal to shard_epoch.
# A read-only session burst then checks version stability on the recovered
# server, and a SIGTERM must drain cleanly (exit 0). CI uploads the
# metrics snapshot as an artifact; run locally with `make shard-smoke`.
set -euo pipefail

ADDR="${ADDR:-127.0.0.1:7632}"
HTTP="${HTTP:-127.0.0.1:7633}"
OUT="${OUT:-shard-metrics.txt}"
SHARDS="${SHARDS:-4}"
DAYS="${DAYS:-40}"
FACTS="${FACTS:-300}"
PACE="${PACE:-100ms}"

go build -o bin/vnlserver ./cmd/vnlserver
go build -o bin/vnlload ./cmd/vnlload

work=$(mktemp -d)
SRV="" LOAD=""
cleanup() {
  kill -9 $SRV $LOAD 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

wait_ready() { # description
  for i in $(seq 1 150); do
    if curl -fsS "http://$HTTP/readyz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "$1 never became ready" >&2
  return 1
}

start_server() {
  bin/vnlserver -addr "$ADDR" -http "$HTTP" -shards "$SHARDS" \
    -wal "$work/shards" -kv -gc-interval 1s &
  SRV=$!
}
start_server
wait_ready "sharded server"

# Warm-up burst with the full client-side oracle audit: every batch is
# one two-phase epoch flip, the concurrent reader session must never see
# its count move, and the final scan must match the oracle replay exactly.
bin/vnlload -dsn "$ADDR" -days 10 -facts "$FACTS"

# Paced background burst, then kill -9 while flips are in flight. The
# interrupted load fails, which is the point; the server gets no chance to
# drain anything.
bin/vnlload -dsn "$ADDR" -days "$DAYS" -facts "$FACTS" -pace "$PACE" -seed 2 &
LOAD=$!
sleep 2
kill -9 $SRV
wait $SRV 2>/dev/null || true
wait $LOAD 2>/dev/null || true
LOAD=""

# Restart over the same directory: shard WAL recovery plus the epoch-log
# replay must converge every shard onto one epoch, all-or-nothing.
start_server
wait_ready "sharded server (restart after kill -9)"

curl -fsS "http://$HTTP/metrics" | tee "$OUT"
curl -fsS "http://$HTTP/healthz" >/dev/null

epoch=$(awk '$1 == "shard_epoch" {print $2}' "$OUT")
if [ -z "$epoch" ] || [ "$epoch" -lt 11 ]; then
  echo "recovered epoch '$epoch' lost the warm-up burst's 10 flips" >&2
  exit 1
fi
for i in $(seq 0 $((SHARDS - 1))); do
  vn=$(awk -v g="shard_${i}_vn" '$1 == g {print $2}' "$OUT")
  if [ "$vn" != "$epoch" ]; then
    echo "shard $i recovered at VN $vn, epoch is $epoch: torn cross-shard recovery" >&2
    exit 1
  fi
done
echo "all $SHARDS shards recovered at epoch $epoch (all-or-nothing)"

# Session reads on the recovered server: a pinned session's view must not
# move for its whole lifetime.
bin/vnlload -dsn "$ADDR" -readonly -reads 300

drain() {
  kill -TERM "$1"
  if wait "$1"; then
    echo "sharded server: graceful drain, exit 0"
  else
    echo "sharded server exited $? after SIGTERM; expected a clean drain" >&2
    exit 1
  fi
}
drain $SRV
SRV=""
trap - EXIT
rm -rf "$work"

# The snapshot must show real sharded serving: flips, per-shard deltas,
# and the session/query routing counters the operator dashboard reads.
grep -q 'shard_epoch_flips' "$OUT"
grep -q 'shard_0_deltas' "$OUT"
grep -q 'shard_sessions_begun' "$OUT"
grep -q 'shard_epoch_flip_ns' "$OUT"
echo "shard smoke passed (metrics in $OUT)"
